(* Differential tests for the staged execution engines — the closure
   compiler (Compile) and the flat-bytecode engine (Bytecode) — against
   the tree-walking interpreter (Interp): all three must agree
   cycle-exactly and value-exactly on every kernel, format and prefetch
   variant, single- and multi-core, and must raise identical traps and
   faults on the same inputs. The bytecode engine's superinstruction
   fusion is additionally checked fused-vs-unfused. Also checks that the
   benchmark grid's domain-parallel prewarm reproduces sequential
   measurements bit for bit. *)

module Ir = Asap_ir.Ir
module Builder = Asap_ir.Builder
module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Storage = Asap_tensor.Storage
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Interp = Asap_sim.Interp
module Bytecode = Asap_sim.Bytecode
module Runtime = Asap_sim.Runtime
module Pipeline = Asap_core.Pipeline
module Bindings = Asap_core.Bindings
module Driver = Asap_core.Driver
module Kernel = Asap_lang.Kernel
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Generate = Asap_workloads.Generate
module Suite = Asap_workloads.Suite

let check = Alcotest.(check bool)
let check_s = Alcotest.(check string)

let machine = Machine.gracemont_scaled ()

let small_matrix seed =
  Generate.power_law ~seed ~rows:300 ~cols:300 ~avg_deg:6 ~alpha:2.0 ()

let variants =
  [ ("baseline", Pipeline.Baseline);
    ("asap", Pipeline.Asap { Asap.default with Asap.distance = 8 });
    ("aj", Pipeline.Ainsworth_jones { Aj.default with Aj.distance = 8 }) ]

let encodings () =
  [ Encoding.coo (); Encoding.csr (); Encoding.dcsr () ]

(* Reports and outputs are plain data, so structural equality is the
   whole cycle-exactness and value-exactness contract at once: cycles,
   instruction mix, every cache/MSHR/prefetcher counter, and the kernel
   output down to float summation order. *)
let same_result name (a : Driver.result) (b : Driver.result) =
  check (name ^ ": report") true (a.Driver.report = b.Driver.report);
  check (name ^ ": nnz") true (a.Driver.nnz = b.Driver.nnz);
  check (name ^ ": out_f") true (a.Driver.out_f = b.Driver.out_f);
  check (name ^ ": out_b") true (a.Driver.out_b = b.Driver.out_b)

(* Run [f] under all three engines and require both staged engines to
   reproduce the interpreter exactly. *)
let three_way name (f : Exec.engine -> Driver.result) =
  let r_i = f `Interp in
  same_result (name ^ " compiled") r_i (f `Compiled);
  same_result (name ^ " bytecode") r_i (f `Bytecode)

let test_differential_spmv () =
  let coo = small_matrix 21 in
  List.iter
    (fun enc ->
      List.iter
        (fun (vn, v) ->
          three_way
            (Printf.sprintf "spmv %s/%s" enc.Encoding.name vn)
            (fun engine -> Driver.spmv ~engine machine v enc coo))
        variants)
    (encodings ())

let test_differential_spmm () =
  let coo = small_matrix 22 in
  List.iter
    (fun enc ->
      List.iter
        (fun (vn, v) ->
          three_way
            (Printf.sprintf "spmm %s/%s" enc.Encoding.name vn)
            (fun engine -> Driver.spmm ~engine ~n:4 machine v enc coo))
        variants)
    (encodings ())

let test_differential_binary () =
  let coo = small_matrix 23 in
  List.iter
    (fun (vn, v) ->
      three_way ("binary spmv " ^ vn) (fun engine ->
          Driver.spmv ~engine ~binary:true machine v (Encoding.csr ()) coo))
    variants

let test_differential_ttv () =
  let coo =
    Generate.tensor3 ~seed:24 ~dims:[| 20; 30; 40 |] ~nnz:500 ()
  in
  List.iter
    (fun (vn, v) ->
      three_way ("ttv " ^ vn) (fun engine -> Driver.ttv ~engine machine v coo))
    variants

let test_differential_multicore () =
  (* Four slices on a shared hierarchy: the effect-handler scheduler must
     interleave identically whichever engine drives the fibers. *)
  let coo = small_matrix 25 in
  let machine4 = Machine.gracemont_scaled ~cores:4 () in
  List.iter
    (fun (vn, v) ->
      let run engine =
        Driver.spmv ~engine ~threads:4 machine4 v (Encoding.csr ()) coo
      in
      three_way ("multicore spmv " ^ vn) run;
      check ("multicore " ^ vn ^ ": 4 threads") true
        ((run `Bytecode).Driver.report.Asap_sim.Exec.rp_threads = 4))
    variants

let test_multicore_deterministic () =
  (* Two invocations of the same 4-slice run must agree exactly — the
     scheduler has no hidden host-order dependence. *)
  let coo = small_matrix 26 in
  let machine4 = Machine.gracemont_scaled ~cores:4 () in
  let v = Pipeline.Asap { Asap.default with Asap.distance = 8 } in
  let run () =
    Driver.spmv ~threads:4 machine4 v (Encoding.csr ()) coo
  in
  same_result "multicore repeat" (run ()) (run ())

(* --- Traps and faults ------------------------------------------------- *)

(* Every engine must fail the same way on the same bad program: same
   exception, same message, raised from the same simulated point. *)
let outcome_of engine fn ~bufs ~scalars =
  match Exec.run ~engine machine fn ~bufs ~scalars with
  | (_ : Exec.report) -> "ok"
  | exception Interp.Trap m -> "trap: " ^ m
  | exception Runtime.Fault m -> "fault: " ^ m

let same_outcome name expected fn mk_bufs scalars =
  List.iter
    (fun engine ->
      check_s
        (Printf.sprintf "%s (%s)" name (Exec.engine_to_string engine))
        expected
        (outcome_of engine fn ~bufs:(mk_bufs ()) ~scalars))
    [ `Interp; `Compiled; `Bytecode ]

let test_trap_fault_parity () =
  (* Division by zero inside a loop body. *)
  let fn_div, div_buf =
    let b = Builder.create () in
    let out = Builder.buf b "out" Ir.EIdx64 in
    let n = Builder.scalar_param b "n" Ir.Index in
    Builder.for0 b "i" (Builder.index b 0) n (fun i ->
        let q = Builder.ibin b Ir.Idiv n i in
        Builder.store b out (Builder.index b 0) q);
    (Builder.finish b "div_by_zero", out)
  in
  same_outcome "div by zero" "trap: division by zero" fn_div
    (fun () -> [ (div_buf, Runtime.RI (Array.make 1 0)) ])
    [ 3 ];
  (* Non-positive loop step (a dynamic step of zero). *)
  let fn_step, step_buf =
    let b = Builder.create () in
    let out = Builder.buf b "out" Ir.EIdx64 in
    let s = Builder.scalar_param b "s" Ir.Index in
    Builder.for0 b ~step:s "i" (Builder.index b 0) (Builder.index b 4)
      (fun i -> Builder.store b out (Builder.index b 0) i);
    (Builder.finish b "zero_step", out)
  in
  same_outcome "zero step" "trap: non-positive loop step" fn_step
    (fun () -> [ (step_buf, Runtime.RI (Array.make 1 0)) ])
    [ 0 ];
  (* Out-of-bounds load: the address is observed, then the engine faults
     with the buffer's name and extent. *)
  let fn_load, load_bufs =
    let b = Builder.create () in
    let src = Builder.buf b "src" Ir.EF64 in
    let out = Builder.buf b "out" Ir.EF64 in
    let x = Builder.load b src (Builder.index b 5) in
    Builder.store b out (Builder.index b 0) x;
    (Builder.finish b "oob_load", (src, out))
  in
  same_outcome "oob load" "fault: load src[5] out of bounds [0, 3)" fn_load
    (fun () ->
      let src, out = load_bufs in
      [ (src, Runtime.RF [| 1.; 2.; 3. |]);
        (out, Runtime.RF (Array.make 1 0.)) ])
    [];
  (* Out-of-bounds store. *)
  let fn_store, store_buf =
    let b = Builder.create () in
    let out = Builder.buf b "out" Ir.EF64 in
    Builder.store b out (Builder.index b 2) (Builder.f64 b 7.5);
    (Builder.finish b "oob_store", out)
  in
  same_outcome "oob store" "fault: store out[2] out of bounds [0, 2)" fn_store
    (fun () -> [ (store_buf, Runtime.RF (Array.make 2 0.)) ])
    []

(* --- Carried values --------------------------------------------------- *)

let test_carried_values () =
  (* A counted loop carrying a float accumulator and an int counter,
     feeding a while loop that carries both onward — the full carried
     init/yield/result plumbing of both loop forms, in every engine. *)
  let fn, (src_buf, out_buf) =
    let b = Builder.create () in
    let src = Builder.buf b "src" Ir.EF64 in
    let out = Builder.buf b "out" Ir.EF64 in
    let n = Builder.scalar_param b "n" Ir.Index in
    let zero = Builder.index b 0 and one = Builder.index b 1 in
    let finals =
      Builder.for_ b "i" zero n
        ~carried:
          [ ("acc", Ir.F64, Builder.f64 b 0.25); ("cnt", Ir.Index, zero) ]
        (fun i args ->
          match args with
          | [ acc; cnt ] ->
            let x = Builder.load b src i in
            [ Builder.fadd b acc x; Builder.iadd b cnt one ]
          | _ -> assert false)
    in
    (match finals with
     | [ acc; cnt ] ->
       let ws =
         Builder.while_ b
           [ ("c", Ir.Index, cnt); ("s", Ir.F64, acc) ]
           (fun args ->
             match args with
             | [ c; _ ] -> Builder.icmp b Ir.Sgt c zero
             | _ -> assert false)
           (fun args ->
             match args with
             | [ c; s ] -> [ Builder.isub b c one; Builder.fadd b s s ]
             | _ -> assert false)
       in
       (match ws with
        | [ c; s ] ->
          Builder.store b out zero s;
          Builder.store b out one (Builder.cast b Ir.F64 c)
        | _ -> assert false)
     | _ -> assert false);
    (Builder.finish b "carried", (src, out))
  in
  let src_data = [| 0.5; 1.5; 2.5; 3.5 |] in
  let run engine =
    let out = Array.make 2 0. in
    let bufs =
      [ (src_buf, Runtime.RF (Array.copy src_data));
        (out_buf, Runtime.RF out) ]
    in
    let r = Exec.run ~engine machine fn ~bufs ~scalars:[ 4 ] in
    (r, out)
  in
  let r_i, out_i = run `Interp in
  let r_c, out_c = run `Compiled in
  let r_b, out_b = run `Bytecode in
  (* (0.25 + 8.0) doubled 4 times, and the counter drained to 0. *)
  check "carried: expected value" true (out_i = [| 132.; 0. |]);
  check "carried: compiled report" true (r_i = r_c);
  check "carried: bytecode report" true (r_i = r_b);
  check "carried: compiled out" true (out_i = out_c);
  check "carried: bytecode out" true (out_i = out_b)

(* --- Superinstruction fusion ------------------------------------------ *)

let test_fusion_cycle_exact () =
  (* CSR SpMV — the shape the LD2/LDFMA/POS2FOR superinstructions target.
     Fused and unfused bytecode must produce identical results and cycle
     counts (against a memory port with address-dependent latencies, so
     any divergence in issue/retire order shows up), both matching the
     interpreter. *)
  let coo = small_matrix 27 in
  let enc = Encoding.csr () in
  let st = Storage.pack enc coo in
  let compiled = Pipeline.compile (Kernel.spmv ~enc ()) Pipeline.Baseline in
  let fn = compiled.Pipeline.fn in
  let rows = coo.Coo.dims.(0) and cols = coo.Coo.dims.(1) in
  let scalars = Bindings.scalar_args compiled.Pipeline.cc ~extents:[| rows; cols |] in
  let mem =
    { Interp.m_load = (fun ~pc:_ ~addr ~at -> at + 2 + (addr land 31));
      m_store = (fun ~pc:_ ~addr:_ ~at:_ -> ());
      m_prefetch = (fun ~addr:_ ~locality:_ ~at:_ -> ()) }
  in
  let fresh () =
    let out = Array.make rows 0. in
    let dense =
      [ ("c", Runtime.RF (Array.init cols (fun j -> float_of_int (j mod 7))));
        ("a", Runtime.RF out) ]
    in
    let bufs =
      Bindings.storage_bufs compiled.Pipeline.cc st ~binary:false ~dense
    in
    (Runtime.layout fn bufs, out)
  in
  let bound_i, out_i = fresh () in
  let r_i = Interp.run fn ~bufs:bound_i ~scalars ~mem in
  let bound_f, out_f = fresh () in
  let p_fused = Bytecode.compile fn ~bufs:bound_f in
  let r_f = Bytecode.run p_fused ~scalars ~mem in
  let bound_u, out_u = fresh () in
  let p_unfused = Bytecode.compile ~fuse:false fn ~bufs:bound_u in
  let r_u = Bytecode.run p_unfused ~scalars ~mem in
  check "fusion: superinstructions emitted" true
    (Bytecode.fused_count p_fused > 0);
  check "fusion: unfused has none" true (Bytecode.fused_count p_unfused = 0);
  check "fusion: fused = interp" true (r_f = r_i);
  check "fusion: unfused = interp" true (r_u = r_i);
  check "fusion: fused output" true (out_f = out_i);
  check "fusion: unfused output" true (out_u = out_i)

(* --- Pipeline passes -------------------------------------------------- *)

let run_pipeline ?pipeline engine v coo =
  Driver.run
    (Driver.Cfg.make ~engine ?pipeline ~machine ~variant:v ())
    (Driver.Spmv (Encoding.csr ())) coo

let test_differential_pipeline () =
  (* Every registered IR pass, alone and in the default optimisation
     stack, must be three-way cycle-exact — and, being non-semantic
     rewrites, value-exact against the unpiped baseline. *)
  let coo = small_matrix 28 in
  let pipelines =
    [ "sparsify,fold"; "sparsify,licm"; "sparsify,unroll{f=4}";
      "sparsify,slack";
      "sparsify,asap{d=8},fold,licm,unroll{f=2},slack";
      "sparsify,aj{d=8},fold,licm" ]
  in
  List.iter
    (fun p ->
      three_way ("pipeline " ^ p) (fun engine ->
          run_pipeline ~pipeline:p engine Pipeline.Baseline coo))
    pipelines;
  let base = run_pipeline `Interp Pipeline.Baseline coo in
  List.iter
    (fun p ->
      let r = run_pipeline ~pipeline:p `Interp Pipeline.Baseline coo in
      check ("pipeline " ^ p ^ ": value-exact vs baseline") true
        (r.Driver.out_f = base.Driver.out_f))
    pipelines

let test_pipeline_matches_variant () =
  (* A variant run with its own canonical spec passed explicitly must be
     indistinguishable from the implicit-pipeline run, in every engine. *)
  let coo = small_matrix 29 in
  List.iter
    (fun (vn, v) ->
      let spec = Pipeline.spec_of_variant v in
      List.iter
        (fun engine ->
          same_result
            (Printf.sprintf "explicit %s (%s)" vn
               (Asap_sim.Exec.engine_to_string engine))
            (run_pipeline engine v coo)
            (run_pipeline ~pipeline:spec engine v coo))
        [ `Interp; `Compiled; `Bytecode ])
    variants

(* --- Parallel benchmark grid ----------------------------------------- *)

let grid_entry name seed =
  { Suite.name; group = "engine-test"; binary = false; spmm = false;
    gen =
      (fun () ->
        Generate.power_law ~seed ~rows:400 ~cols:400 ~avg_deg:6 ~alpha:2.0
          ()) }

let test_grid_parallel_matches_sequential () =
  (* The domain-parallel prewarm must leave the run cache in exactly the
     state a sequential sweep produces: same keys, same measurements. *)
  let e1 = grid_entry "engine-diff-m1" 41
  and e2 = grid_entry "engine-diff-m2" 42 in
  let cells =
    List.concat_map
      (fun e ->
        [ Harness.cell `Spmv e Harness.Base Harness.Optimized;
          Harness.cell `Spmv e Harness.A Harness.Optimized;
          Harness.cell `Spmm e Harness.Jones Harness.Optimized ])
      [ e1; e2 ]
  in
  let was_verbose = !Harness.verbose in
  Harness.verbose := false;
  let run_one (c : Harness.cell) =
    Harness.measure ~threads:c.Harness.c_threads c.Harness.c_kernel
      c.Harness.c_entry c.Harness.c_vkind c.Harness.c_hw
  in
  let clear () =
    List.iter
      (fun (c : Harness.cell) ->
        Hashtbl.remove Harness.run_cache (Harness.cell_key c);
        Harness.drop_matrix c.Harness.c_entry.Suite.name)
      cells
  in
  clear ();
  let seq = List.map run_one cells in
  clear ();
  Harness.jobs := 4;
  Harness.prewarm cells;
  Harness.jobs := 1;
  List.iter
    (fun (c : Harness.cell) ->
      check ("prewarmed " ^ Harness.cell_key c) true
        (Hashtbl.mem Harness.run_cache (Harness.cell_key c)))
    cells;
  let par = List.map run_one cells in
  clear ();
  Harness.verbose := was_verbose;
  List.iter2
    (fun (a : Harness.measurement) (b : Harness.measurement) ->
      check ("grid " ^ a.Harness.m_name) true (a = b))
    seq par

let suite =
  [ Alcotest.test_case "spmv differential" `Quick test_differential_spmv;
    Alcotest.test_case "spmm differential" `Quick test_differential_spmm;
    Alcotest.test_case "binary spmv differential" `Quick
      test_differential_binary;
    Alcotest.test_case "ttv differential" `Quick test_differential_ttv;
    Alcotest.test_case "multicore differential" `Quick
      test_differential_multicore;
    Alcotest.test_case "multicore deterministic" `Quick
      test_multicore_deterministic;
    Alcotest.test_case "trap and fault parity" `Quick test_trap_fault_parity;
    Alcotest.test_case "carried values" `Quick test_carried_values;
    Alcotest.test_case "fusion cycle-exact" `Quick test_fusion_cycle_exact;
    Alcotest.test_case "pipeline pass differential" `Quick
      test_differential_pipeline;
    Alcotest.test_case "pipeline matches variant" `Quick
      test_pipeline_matches_variant;
    Alcotest.test_case "parallel grid = sequential" `Quick
      test_grid_parallel_matches_sequential ]
