(* Differential tests for the staged closure compiler (Compile) against
   the tree-walking interpreter (Interp): the two engines must agree
   cycle-exactly and value-exactly on every kernel, format and prefetch
   variant, single- and multi-core. Also checks that the benchmark grid's
   domain-parallel prewarm reproduces sequential measurements bit for
   bit. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Generate = Asap_workloads.Generate
module Suite = Asap_workloads.Suite

let check = Alcotest.(check bool)

let machine = Machine.gracemont_scaled ()

let small_matrix seed =
  Generate.power_law ~seed ~rows:300 ~cols:300 ~avg_deg:6 ~alpha:2.0 ()

let variants =
  [ ("baseline", Pipeline.Baseline);
    ("asap", Pipeline.Asap { Asap.default with Asap.distance = 8 });
    ("aj", Pipeline.Ainsworth_jones { Aj.default with Aj.distance = 8 }) ]

let encodings () =
  [ Encoding.coo (); Encoding.csr (); Encoding.dcsr () ]

(* Reports and outputs are plain data, so structural equality is the
   whole cycle-exactness and value-exactness contract at once: cycles,
   instruction mix, every cache/MSHR/prefetcher counter, and the kernel
   output down to float summation order. *)
let same_result name (a : Driver.result) (b : Driver.result) =
  check (name ^ ": report") true (a.Driver.report = b.Driver.report);
  check (name ^ ": nnz") true (a.Driver.nnz = b.Driver.nnz);
  check (name ^ ": out_f") true (a.Driver.out_f = b.Driver.out_f);
  check (name ^ ": out_b") true (a.Driver.out_b = b.Driver.out_b)

let test_differential_spmv () =
  let coo = small_matrix 21 in
  List.iter
    (fun enc ->
      List.iter
        (fun (vn, v) ->
          let r_i = Driver.spmv ~engine:`Interp machine v enc coo in
          let r_c = Driver.spmv ~engine:`Compiled machine v enc coo in
          same_result (Printf.sprintf "spmv %s/%s" enc.Encoding.name vn) r_i
            r_c)
        variants)
    (encodings ())

let test_differential_spmm () =
  let coo = small_matrix 22 in
  List.iter
    (fun enc ->
      List.iter
        (fun (vn, v) ->
          let r_i = Driver.spmm ~engine:`Interp ~n:4 machine v enc coo in
          let r_c = Driver.spmm ~engine:`Compiled ~n:4 machine v enc coo in
          same_result (Printf.sprintf "spmm %s/%s" enc.Encoding.name vn) r_i
            r_c)
        variants)
    (encodings ())

let test_differential_binary () =
  let coo = small_matrix 23 in
  List.iter
    (fun (vn, v) ->
      let r_i = Driver.spmv ~engine:`Interp ~binary:true machine v
          (Encoding.csr ()) coo
      in
      let r_c = Driver.spmv ~engine:`Compiled ~binary:true machine v
          (Encoding.csr ()) coo
      in
      same_result ("binary spmv " ^ vn) r_i r_c)
    variants

let test_differential_ttv () =
  let coo =
    Generate.tensor3 ~seed:24 ~dims:[| 20; 30; 40 |] ~nnz:500 ()
  in
  List.iter
    (fun (vn, v) ->
      let r_i = Driver.ttv ~engine:`Interp machine v coo in
      let r_c = Driver.ttv ~engine:`Compiled machine v coo in
      same_result ("ttv " ^ vn) r_i r_c)
    variants

let test_differential_multicore () =
  (* Four slices on a shared hierarchy: the effect-handler scheduler must
     interleave identically whichever engine drives the fibers. *)
  let coo = small_matrix 25 in
  let machine4 = Machine.gracemont_scaled ~cores:4 () in
  List.iter
    (fun (vn, v) ->
      let r_i =
        Driver.spmv ~engine:`Interp ~threads:4 machine4 v (Encoding.csr ())
          coo
      in
      let r_c =
        Driver.spmv ~engine:`Compiled ~threads:4 machine4 v (Encoding.csr ())
          coo
      in
      same_result ("multicore spmv " ^ vn) r_i r_c;
      check ("multicore " ^ vn ^ ": 4 threads") true
        (r_c.Driver.report.Asap_sim.Exec.rp_threads = 4))
    variants

let test_multicore_deterministic () =
  (* Two invocations of the same 4-slice run must agree exactly — the
     scheduler has no hidden host-order dependence. *)
  let coo = small_matrix 26 in
  let machine4 = Machine.gracemont_scaled ~cores:4 () in
  let v = Pipeline.Asap { Asap.default with Asap.distance = 8 } in
  let run () =
    Driver.spmv ~threads:4 machine4 v (Encoding.csr ()) coo
  in
  same_result "multicore repeat" (run ()) (run ())

(* --- Parallel benchmark grid ----------------------------------------- *)

let grid_entry name seed =
  { Suite.name; group = "engine-test"; binary = false; spmm = false;
    gen =
      (fun () ->
        Generate.power_law ~seed ~rows:400 ~cols:400 ~avg_deg:6 ~alpha:2.0
          ()) }

let test_grid_parallel_matches_sequential () =
  (* The domain-parallel prewarm must leave the run cache in exactly the
     state a sequential sweep produces: same keys, same measurements. *)
  let e1 = grid_entry "engine-diff-m1" 41
  and e2 = grid_entry "engine-diff-m2" 42 in
  let cells =
    List.concat_map
      (fun e ->
        [ Harness.cell `Spmv e Harness.Base Harness.Optimized;
          Harness.cell `Spmv e Harness.A Harness.Optimized;
          Harness.cell `Spmm e Harness.Jones Harness.Optimized ])
      [ e1; e2 ]
  in
  let was_verbose = !Harness.verbose in
  Harness.verbose := false;
  let run_one (c : Harness.cell) =
    Harness.measure ~threads:c.Harness.c_threads c.Harness.c_kernel
      c.Harness.c_entry c.Harness.c_vkind c.Harness.c_hw
  in
  let clear () =
    List.iter
      (fun (c : Harness.cell) ->
        Hashtbl.remove Harness.run_cache (Harness.cell_key c);
        Harness.drop_matrix c.Harness.c_entry.Suite.name)
      cells
  in
  clear ();
  let seq = List.map run_one cells in
  clear ();
  Harness.jobs := 4;
  Harness.prewarm cells;
  Harness.jobs := 1;
  List.iter
    (fun (c : Harness.cell) ->
      check ("prewarmed " ^ Harness.cell_key c) true
        (Hashtbl.mem Harness.run_cache (Harness.cell_key c)))
    cells;
  let par = List.map run_one cells in
  clear ();
  Harness.verbose := was_verbose;
  List.iter2
    (fun (a : Harness.measurement) (b : Harness.measurement) ->
      check ("grid " ^ a.Harness.m_name) true (a = b))
    seq par

let suite =
  [ Alcotest.test_case "spmv differential" `Quick test_differential_spmv;
    Alcotest.test_case "spmm differential" `Quick test_differential_spmm;
    Alcotest.test_case "binary spmv differential" `Quick
      test_differential_binary;
    Alcotest.test_case "ttv differential" `Quick test_differential_ttv;
    Alcotest.test_case "multicore differential" `Quick
      test_differential_multicore;
    Alcotest.test_case "multicore deterministic" `Quick
      test_multicore_deterministic;
    Alcotest.test_case "parallel grid = sequential" `Quick
      test_grid_parallel_matches_sequential ]
