(* Test entry point: one Alcotest run over all library suites. *)

let () =
  Alcotest.run "asap"
    [ ("ir", Test_ir.suite);
      ("tensor", Test_tensor.suite);
      ("lang", Test_lang.suite);
      ("sparsifier", Test_sparsifier.suite);
      ("prefetch", Test_prefetch.suite);
      ("merge", Test_merge.suite);
      ("trace", Test_trace.suite);
      ("sim", Test_sim.suite);
      ("interp-props", Test_interp_props.suite);
      ("core", Test_core.suite);
      ("model", Test_model.suite);
      ("engine", Test_engine.suite);
      ("obs", Test_obs.suite);
      ("pass", Test_pass.suite);
      ("golden", Test_golden.suite);
      ("specialize", Test_specialize.suite);
      ("serve", Test_serve.suite) ]
