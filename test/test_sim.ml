(* Tests for the simulator: caches, MSHRs, DRAM, hardware prefetchers, the
   memory hierarchy, the interpreter's timing model, and multicore runs. *)

module Cache = Asap_sim.Cache
module Dram = Asap_sim.Dram
module Mshr = Asap_sim.Mshr
module Hp = Asap_sim.Hw_prefetcher
module Machine = Asap_sim.Machine
module Hierarchy = Asap_sim.Hierarchy
module Runtime = Asap_sim.Runtime
module Interp = Asap_sim.Interp
module Exec = Asap_sim.Exec
open Asap_ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Cache --------------------------------------------------------- *)

let test_cache_hit_miss () =
  let c = Cache.create ~name:"t" ~size_bytes:(4 * 64) ~ways:2 ~line_bytes:64 in
  check "cold miss" true (Cache.lookup c 0 = Cache.no_hit);
  Cache.insert c 0 ~prov:Cache.demand_prov;
  check "hit" true (Cache.lookup c 0 = Cache.demand_prov);
  check_int "hits" 1 c.Cache.hits;
  check_int "misses" 1 c.Cache.misses

let test_cache_lru_eviction () =
  (* 2 sets x 2 ways; lines 0,2,4 map to set 0. *)
  let c = Cache.create ~name:"t" ~size_bytes:(4 * 64) ~ways:2 ~line_bytes:64 in
  Cache.insert c 0 ~prov:Cache.demand_prov;
  Cache.insert c 2 ~prov:Cache.demand_prov;
  let (_ : int) = Cache.lookup c 0 in            (* refresh line 0 *)
  Cache.insert c 4 ~prov:Cache.demand_prov;      (* evicts LRU = line 2 *)
  check "line 0 kept" true (Cache.probe c 0);
  check "line 2 evicted" false (Cache.probe c 2);
  check "line 4 present" true (Cache.probe c 4)

let test_cache_prefetch_provenance () =
  let c = Cache.create ~name:"t" ~size_bytes:(4 * 64) ~ways:2 ~line_bytes:64 in
  Cache.insert c 7 ~prov:3;
  check_int "prefetch provenance" 3 (Cache.lookup c 7);
  check_int "pf hit counted" 1 c.Cache.pf_hits;
  (* Second touch: now demand-resident. *)
  check "prov cleared" true (Cache.lookup c 7 = Cache.demand_prov)

let test_cache_geometry_validation () =
  (try
     let (_ : Cache.t) =
       Cache.create ~name:"bad" ~size_bytes:(3 * 64) ~ways:2 ~line_bytes:64
     in
     Alcotest.fail "accepted non-pow2 sets"
   with Invalid_argument _ -> ())

(* --- DRAM ---------------------------------------------------------- *)

let test_dram_bandwidth_queueing () =
  let d = Dram.create ~latency:100 ~gap:4 in
  let t1 = Dram.fill d ~at:0 in
  let t2 = Dram.fill d ~at:0 in
  let t3 = Dram.fill d ~at:0 in
  check_int "first" 100 t1;
  check_int "queued by gap" 104 t2;
  check_int "queued more" 108 t3;
  check_int "lines counted" 3 d.Dram.lines;
  (* A later request after the queue drains sees only latency. *)
  let t4 = Dram.fill d ~at:1000 in
  check_int "idle channel" 1100 t4

(* --- MSHR ---------------------------------------------------------- *)

let test_mshr () =
  let m = Mshr.create 2 in
  Mshr.add ~prov:(-1) m 10 50;
  Mshr.add ~prov:(-1) m 11 60;
  check "full" true (Mshr.full m);
  check_int "find" 50 (Mshr.find m 10);
  check_int "earliest" 50 (Mshr.earliest m);
  Mshr.expire m ~now:55;
  check "expired one" false (Mshr.full m);
  check_int "gone" (-1) (Mshr.find m 10);
  check_int "other kept" 60 (Mshr.find m 11);
  check_int "earliest after expire" 60 (Mshr.earliest m)

(* --- Hardware prefetchers ------------------------------------------ *)

(* Feed one observation and collect the requested lines as a list. *)
let observe (p : Hp.t) ?(pc = 1) ?(hit = false) addr =
  let out = Array.make Hp.max_requests 0 in
  let n = p.Hp.pf_observe ~pc ~addr ~line:(addr asr 6) ~hit ~out in
  Array.to_list (Array.sub out 0 n)

let test_nlp () =
  let p = Hp.l1_nlp () in
  (match observe p 640 with
   | [ line ] -> check_int "next line" 11 line
   | _ -> Alcotest.fail "nlp must fire on a miss");
  check "silent on hit" true (observe p ~hit:true 640 = [])

let test_ipp_stride_detection () =
  let p = Hp.l1_ipp ~streams:2 ~lookahead:4 () in
  (* Train PC 1 with stride 256 (4 lines). *)
  let fire = ref [] in
  List.iter (fun a -> fire := observe p ~pc:1 a) [ 0; 256; 512; 768 ];
  (match !fire with
   | [ line ] -> check_int "strided target" ((768 + (256 * 4)) asr 6) line
   | _ -> Alcotest.fail "ipp must fire after training");
  (* Replacement hysteresis: an established stream is not displaced by a
     burst of other PCs (capacity 2: PC 2 takes the free slot, PC 3 only
     decays). *)
  List.iter
    (fun (pc, a) -> ignore (observe p ~pc a))
    [ (2, 0); (2, 64); (3, 0); (3, 64) ];
  check "established stream retained" true (observe p ~pc:1 1024 <> []);
  (* Sustained conflicts eventually decay and evict it. *)
  for k = 1 to 200 do
    ignore (observe p ~pc:(10 + (k mod 7)) (k * 8192))
  done;
  check "decayed stream evicted" true (observe p ~pc:1 1280 = [])

let test_streamer () =
  let p = Hp.mlc_streamer () in
  ignore (observe p 0);
  ignore (observe p 64);
  let rs = observe p 128 in
  check "streamer fires" true (rs <> []);
  List.iter
    (fun line ->
      check "within page" true (line asr 6 = 0);
      check "ahead" true (line > 2))
    rs

let test_amp_repeated_delta () =
  let p = Hp.l2_amp () in
  ignore (observe p 0);
  ignore (observe p (5 * 64));
  let rs = observe p (10 * 64) in
  (match rs with
   | [ a; b ] ->
     check_int "stride 5" 15 a;
     check_int "stride 5 x2" 20 b
   | _ -> Alcotest.fail "amp must fire on repeated delta")

(* --- Hierarchy ----------------------------------------------------- *)

let quiet_hw =
  { Machine.l1_nlp = false; l1_ipp = false; l2_nlp = false;
    mlc_streamer = false; l2_amp = false; llc_streamer = false }

let test_hierarchy_levels () =
  let m = Machine.gracemont ~hw:quiet_hw () in
  let h = Hierarchy.create m in
  (* First access: full DRAM latency; second: L1 hit. *)
  let t1 = Hierarchy.load h ~core:0 ~pc:1 ~addr:4096 ~at:0 in
  check "dram latency" true (t1 >= m.Machine.dram_latency);
  let t2 = Hierarchy.load h ~core:0 ~pc:1 ~addr:4100 ~at:t1 in
  check_int "l1 hit" (t1 + m.Machine.lat_l1) t2;
  let st = Hierarchy.stats h in
  check_int "one l2 miss" 1 st.Hierarchy.st_l2_misses;
  check_int "two loads" 2 st.Hierarchy.st_demand_loads

let test_hierarchy_inflight_merge () =
  let m = Machine.gracemont ~hw:quiet_hw () in
  let h = Hierarchy.create m in
  let t1 = Hierarchy.load h ~core:0 ~pc:1 ~addr:8192 ~at:0 in
  (* Access the same line before the fill completes: waits, no new fill. *)
  let t2 = Hierarchy.load h ~core:0 ~pc:2 ~addr:8200 ~at:5 in
  check "merged" true (t2 <= t1 + m.Machine.lat_l1 && t2 >= t1 - 1);
  let st = Hierarchy.stats h in
  check_int "one dram line" 1 st.Hierarchy.st_dram_lines

let test_hierarchy_sw_prefetch_hides_latency () =
  let m = Machine.gracemont ~hw:quiet_hw () in
  let h = Hierarchy.create m in
  Hierarchy.prefetch h ~core:0 ~addr:16384 ~locality:2 ~at:0;
  (* Demand access after the fill completed: fast. *)
  let t = Hierarchy.load h ~core:0 ~pc:1 ~addr:16384 ~at:1000 in
  check_int "hidden" (1000 + m.Machine.lat_l1) t;
  let st = Hierarchy.stats h in
  check_int "one sw prefetch" 1 st.Hierarchy.st_sw_issued;
  check_int "useful" 1 st.Hierarchy.st_sw_useful

let test_hierarchy_prefetch_drop_on_full_mshr () =
  let m = { (Machine.gracemont ~hw:quiet_hw ()) with Machine.mshrs = 2 } in
  let h = Hierarchy.create m in
  Hierarchy.prefetch h ~core:0 ~addr:0x10000 ~locality:2 ~at:0;
  Hierarchy.prefetch h ~core:0 ~addr:0x20000 ~locality:2 ~at:0;
  Hierarchy.prefetch h ~core:0 ~addr:0x30000 ~locality:2 ~at:0;
  let st = Hierarchy.stats h in
  check_int "two issued" 2 st.Hierarchy.st_sw_issued;
  check_int "one dropped" 1 st.Hierarchy.st_sw_dropped

let test_hierarchy_cluster_topology () =
  (* Cores 0 and 4 live in different clusters: a line brought in by core 0
     misses core 4's L2 but hits the shared L3. *)
  let m = Machine.gracemont ~hw:quiet_hw ~cores:8 () in
  let h = Hierarchy.create m in
  let t0 = Hierarchy.load h ~core:0 ~pc:1 ~addr:0x80000 ~at:0 in
  let t4 = Hierarchy.load h ~core:4 ~pc:1 ~addr:0x80000 ~at:t0 in
  check_int "L3 hit from the other cluster" (t0 + m.Machine.lat_l3) t4;
  (* A same-cluster sibling hits the shared L2. *)
  let t1 = Hierarchy.load h ~core:1 ~pc:1 ~addr:0x80000 ~at:t4 in
  check_int "L2 hit from a sibling core" (t4 + m.Machine.lat_l2) t1

let test_hierarchy_store_write_allocate () =
  let m = Machine.gracemont ~hw:quiet_hw () in
  let h = Hierarchy.create m in
  Hierarchy.store h ~core:0 ~pc:9 ~addr:0x90000 ~at:0;
  let st = Hierarchy.stats h in
  check_int "store counted" 1 st.Hierarchy.st_demand_stores;
  check_int "store miss allocates" 1 st.Hierarchy.st_dram_lines;
  (* The allocated line now hits. *)
  let t = Hierarchy.load h ~core:0 ~pc:1 ~addr:0x90000 ~at:1000 in
  check_int "subsequent load hits L1" (1000 + m.Machine.lat_l1) t

let test_hierarchy_partial_hiding () =
  let m = Machine.gracemont ~hw:quiet_hw () in
  let h = Hierarchy.create m in
  Hierarchy.prefetch h ~core:0 ~addr:0x40000 ~locality:2 ~at:0;
  (* Demand arrives mid-flight: waits only the remainder. *)
  let t = Hierarchy.load h ~core:0 ~pc:1 ~addr:0x40000 ~at:100 in
  check "partial" true (t > 100 + m.Machine.lat_l1 && t <= m.Machine.dram_latency + m.Machine.lat_l1)

(* --- Runtime ------------------------------------------------------- *)

let test_runtime_layout_and_fault () =
  let b = Builder.create () in
  let src = Builder.buf b "src" Ir.EF64 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  let dst = Builder.buf b "dst" Ir.EF64 in
  Builder.for0 b "i" c0 n (fun i ->
      let x = Builder.load b src i in
      Builder.store b dst i x);
  let fn = Builder.finish b "copy" in
  let bufs =
    Runtime.layout fn
      [ (src, Runtime.RF (Array.make 4 1.)); (dst, Runtime.RF (Array.make 4 0.)) ]
  in
  check "distinct bases" true (bufs.(0).Runtime.base <> bufs.(1).Runtime.base);
  check "page aligned" true (bufs.(0).Runtime.base mod 4096 = 0);
  (try
     let (_ : [ `F of float | `I of int ]) = Runtime.read bufs.(0) 4 in
     Alcotest.fail "expected fault"
   with Runtime.Fault _ -> ())

(* --- Interp -------------------------------------------------------- *)

let free_mem =
  { Interp.m_load = (fun ~pc:_ ~addr:_ ~at -> at + 1);
    m_store = (fun ~pc:_ ~addr:_ ~at:_ -> ());
    m_prefetch = (fun ~addr:_ ~locality:_ ~at:_ -> ()) }

let copy_fn () =
  let b = Builder.create () in
  let src = Builder.buf b "src" Ir.EF64 in
  let dst = Builder.buf b "dst" Ir.EF64 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  Builder.for0 b "i" c0 n (fun i ->
      let x = Builder.load b src i in
      Builder.store b dst i x);
  (Builder.finish b "copy", src, dst)

let test_interp_copy_semantics () =
  let fn, src, dst = copy_fn () in
  let s = Array.init 16 float_of_int in
  let d = Array.make 16 0. in
  let bufs = Runtime.layout fn [ (src, Runtime.RF s); (dst, Runtime.RF d) ] in
  let r = Interp.run fn ~bufs ~scalars:[ 16 ] ~mem:free_mem in
  check "copied" true (d = s);
  check_int "loads" 16 r.Interp.r_loads;
  check_int "stores" 16 r.Interp.r_stores;
  check "cycles positive" true (r.Interp.r_cycles > 0)

let test_interp_latency_matters () =
  let fn, src, dst = copy_fn () in
  let mk_mem lat =
    { Interp.m_load = (fun ~pc:_ ~addr:_ ~at -> at + lat);
      m_store = (fun ~pc:_ ~addr:_ ~at:_ -> ());
      m_prefetch = (fun ~addr:_ ~locality:_ ~at:_ -> ()) }
  in
  let run lat =
    let s = Array.make 64 1. and d = Array.make 64 0. in
    let bufs = Runtime.layout fn [ (src, Runtime.RF s); (dst, Runtime.RF d) ] in
    (Interp.run fn ~bufs ~scalars:[ 64 ] ~mem:(mk_mem lat)).Interp.r_cycles
  in
  check "slower memory, more cycles" true (run 200 > run 1)

let test_interp_rob_window_bounds_mlp () =
  (* With a big window, independent misses overlap; a tiny window
     serialises them. *)
  let fn, src, dst = copy_fn () in
  let run rob =
    let s = Array.make 64 1. and d = Array.make 64 0. in
    let bufs = Runtime.layout fn [ (src, Runtime.RF s); (dst, Runtime.RF d) ] in
    let mem =
      { Interp.m_load = (fun ~pc:_ ~addr:_ ~at -> at + 300);
        m_store = (fun ~pc:_ ~addr:_ ~at:_ -> ());
        m_prefetch = (fun ~addr:_ ~locality:_ ~at:_ -> ()) }
    in
    (Interp.run ~rob_size:rob fn ~bufs ~scalars:[ 64 ] ~mem).Interp.r_cycles
  in
  check "window enables MLP" true (run 64 * 2 < run 4)

let test_interp_division_trap () =
  let b = Builder.create () in
  let dst = Builder.buf b "dst" Ir.EIdx32 in
  let c0 = Builder.index b 0 in
  let c1 = Builder.index b 1 in
  let q = Builder.ibin b Ir.Idiv c1 c0 in
  Builder.store b dst c0 q;
  let fn = Builder.finish b "div0" in
  let bufs = Runtime.layout fn [ (dst, Runtime.RI (Array.make 1 0)) ] in
  (try
     let (_ : Interp.result) = Interp.run fn ~bufs ~scalars:[] ~mem:free_mem in
     Alcotest.fail "expected Trap"
   with Interp.Trap _ -> ())

let test_interp_slice () =
  let fn, src, dst = copy_fn () in
  let s = Array.init 16 float_of_int in
  let d = Array.make 16 (-1.) in
  let bufs = Runtime.layout fn [ (src, Runtime.RF s); (dst, Runtime.RF d) ] in
  let (_ : Interp.result) =
    Interp.run ~slice:(4, 8) fn ~bufs ~scalars:[ 16 ] ~mem:free_mem
  in
  check "outside slice untouched" true (d.(0) = -1. && d.(8) = -1.);
  check "inside slice copied" true (d.(4) = 4. && d.(7) = 7.)

(* --- Machine / Exec / Multicore ------------------------------------ *)

let test_machine_tables () =
  let m = Machine.gracemont () in
  check "table1 mentions clusters" true
    (Astring_contains.contains (Machine.table1 m) "per cluster");
  let t2 = Machine.table2 Machine.hw_optimized in
  check "optimized disables NLP" true
    (Astring_contains.contains t2 "L1 NLP        | next line on L1 miss           | Off");
  check "optimized disables AMP" true
    (Astring_contains.contains t2 "| Off");
  check "spmm keeps amp" true
    Machine.(hw_optimized_spmm.l2_amp)

let spmv_like_fn () =
  (* for i: for jj in pos[i]..pos[i+1]: acc += vals[jj] * c[crd[jj]] *)
  let b = Builder.create () in
  let pos = Builder.buf b "pos" Ir.EIdx32 in
  let crd = Builder.buf b "crd" Ir.EIdx32 in
  let vals = Builder.buf b "vals" Ir.EF64 in
  let c = Builder.buf b "c" Ir.EF64 in
  let a = Builder.buf b "a" Ir.EF64 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  let c1 = Builder.index b 1 in
  Builder.for0 b "i" c0 n (fun i ->
      let lo = Builder.load b pos i in
      let hi = Builder.load b pos (Builder.iadd b i c1) in
      let z = Builder.f64 b 0. in
      let acc =
        Builder.for_ b ~carried:[ ("acc", Ir.F64, z) ] "jj" lo hi
          (fun jj args ->
            let j = Builder.load b crd jj in
            let v = Builder.load b vals jj in
            let x = Builder.load b c j in
            [ Builder.fadd b (List.hd args) (Builder.fmul b v x) ])
      in
      Builder.store b a i (List.hd acc));
  (Builder.finish b "spmv_like", pos, crd, vals, c, a)

let test_multicore_matches_single () =
  let fn, pos, crd, vals, c, a = spmv_like_fn () in
  let rows = 64 and deg = 8 in
  let nnz = rows * deg in
  let pos_a = Array.init (rows + 1) (fun i -> i * deg) in
  let crd_a = Array.init nnz (fun k -> (k * 37) mod 256) in
  let vals_a = Array.init nnz (fun k -> float_of_int (k mod 5) +. 1.) in
  let c_a = Array.init 256 (fun j -> float_of_int j) in
  let run threads =
    let a_a = Array.make rows 0. in
    let bufs =
      [ (pos, Runtime.RI pos_a); (crd, Runtime.RI crd_a);
        (vals, Runtime.RF vals_a); (c, Runtime.RF c_a);
        (a, Runtime.RF a_a) ]
    in
    let m = Machine.gracemont ~hw:quiet_hw ~cores:4 () in
    let r =
      if threads = 1 then Exec.run m fn ~bufs ~scalars:[ rows ]
      else Exec.run_parallel m ~threads ~outer_extent:rows fn ~bufs
          ~scalars:[ rows ]
    in
    (Array.copy a_a, r)
  in
  let a1, r1 = run 1 in
  let a4, r4 = run 4 in
  check "same results" true (a1 = a4);
  check "parallel faster" true
    (r4.Exec.rp_cycles < r1.Exec.rp_cycles);
  check "instructions conserved" true
    (abs (r4.Exec.rp_instructions - r1.Exec.rp_instructions)
     < r1.Exec.rp_instructions / 10)

let test_multicore_deterministic () =
  let fn, pos, crd, vals, c, a = spmv_like_fn () in
  let rows = 32 and deg = 4 in
  let nnz = rows * deg in
  let run () =
    let a_a = Array.make rows 0. in
    let bufs =
      [ (pos, Runtime.RI (Array.init (rows + 1) (fun i -> i * deg)));
        (crd, Runtime.RI (Array.init nnz (fun k -> (k * 13) mod 64)));
        (vals, Runtime.RF (Array.make nnz 1.));
        (c, Runtime.RF (Array.make 64 2.));
        (a, Runtime.RF a_a) ]
    in
    let m = Machine.gracemont ~hw:quiet_hw ~cores:2 () in
    (Exec.run_parallel m ~threads:2 ~outer_extent:rows fn ~bufs
       ~scalars:[ rows ]).Exec.rp_cycles
  in
  check_int "deterministic cycles" (run ()) (run ())

let test_exec_metrics () =
  let fn, pos, crd, vals, c, a = spmv_like_fn () in
  let rows = 16 and deg = 2 in
  let nnz = rows * deg in
  let bufs =
    [ (pos, Runtime.RI (Array.init (rows + 1) (fun i -> i * deg)));
      (crd, Runtime.RI (Array.init nnz (fun k -> k mod 32)));
      (vals, Runtime.RF (Array.make nnz 1.));
      (c, Runtime.RF (Array.make 32 1.));
      (a, Runtime.RF (Array.make rows 0.)) ]
  in
  let m = Machine.gracemont ~hw:quiet_hw () in
  let r = Exec.run m fn ~bufs ~scalars:[ rows ] in
  check "mpki finite" true (Exec.l2_mpki r >= 0.);
  check "throughput positive" true (Exec.throughput_nnz_per_ms r ~nnz > 0.);
  check "ai positive" true (Exec.arithmetic_intensity r > 0.);
  check "summary mentions cycles" true
    (Astring_contains.contains (Exec.summary r) "cycles")

let suite =
  [ Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache lru" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache provenance" `Quick test_cache_prefetch_provenance;
    Alcotest.test_case "cache geometry" `Quick test_cache_geometry_validation;
    Alcotest.test_case "dram queueing" `Quick test_dram_bandwidth_queueing;
    Alcotest.test_case "mshr" `Quick test_mshr;
    Alcotest.test_case "nlp" `Quick test_nlp;
    Alcotest.test_case "ipp stride + capacity" `Quick test_ipp_stride_detection;
    Alcotest.test_case "mlc streamer" `Quick test_streamer;
    Alcotest.test_case "amp repeated delta" `Quick test_amp_repeated_delta;
    Alcotest.test_case "hierarchy levels" `Quick test_hierarchy_levels;
    Alcotest.test_case "hierarchy inflight merge" `Quick
      test_hierarchy_inflight_merge;
    Alcotest.test_case "sw prefetch hides latency" `Quick
      test_hierarchy_sw_prefetch_hides_latency;
    Alcotest.test_case "prefetch dropped on full mshr" `Quick
      test_hierarchy_prefetch_drop_on_full_mshr;
    Alcotest.test_case "partial hiding" `Quick test_hierarchy_partial_hiding;
    Alcotest.test_case "cluster topology" `Quick
      test_hierarchy_cluster_topology;
    Alcotest.test_case "store write-allocate" `Quick
      test_hierarchy_store_write_allocate;
    Alcotest.test_case "runtime layout + fault" `Quick
      test_runtime_layout_and_fault;
    Alcotest.test_case "interp copy" `Quick test_interp_copy_semantics;
    Alcotest.test_case "interp latency" `Quick test_interp_latency_matters;
    Alcotest.test_case "interp rob window" `Quick
      test_interp_rob_window_bounds_mlp;
    Alcotest.test_case "interp div trap" `Quick test_interp_division_trap;
    Alcotest.test_case "interp slice" `Quick test_interp_slice;
    Alcotest.test_case "machine tables" `Quick test_machine_tables;
    Alcotest.test_case "multicore matches single" `Quick
      test_multicore_matches_single;
    Alcotest.test_case "multicore deterministic" `Quick
      test_multicore_deterministic;
    Alcotest.test_case "exec metrics" `Quick test_exec_metrics ]
