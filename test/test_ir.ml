(* Tests for the IR: builder, verifier, printer, rewrite utilities. *)

open Asap_ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* A tiny valid function: out[i] = in[i] + 1.0 for i in 0..n. *)
let sample_fn () =
  let b = Builder.create () in
  let src = Builder.buf b "src" Ir.EF64 in
  let dst = Builder.buf b "dst" Ir.EF64 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  let one = Builder.f64 b 1.0 in
  Builder.for0 b "i" c0 n (fun i ->
      let x = Builder.load b src i in
      let y = Builder.fadd b x one in
      Builder.store b dst i y);
  Builder.finish b "incr"

let test_builder_basic () =
  let fn = sample_fn () in
  check_int "params" 3 (List.length fn.Ir.fn_params);
  let c = Ir.counts fn in
  check_int "fors" 1 c.Ir.n_fors;
  check_int "stores" 1 c.Ir.n_stores;
  check "verifies" true (Verify.check_result fn = Ok ())

let test_builder_type_errors () =
  let b = Builder.create () in
  let src = Builder.buf b "src" Ir.EF64 in
  let c0 = Builder.index b 0 in
  let x = Builder.load b src c0 in
  (* f64 + index must be rejected. *)
  (try
     let (_ : Ir.value) = Builder.iadd b x c0 in
     Alcotest.fail "expected Type_error"
   with Builder.Type_error _ -> ());
  (* store of index into f64 buffer must be rejected. *)
  (try
     Builder.store b src c0 c0;
     Alcotest.fail "expected Type_error"
   with Builder.Type_error _ -> ())

let test_builder_const_cache () =
  let b = Builder.create () in
  let c1 = Builder.index b 1 in
  let c1' = Builder.index b 1 in
  check "constants cached" true (c1 == c1');
  let dst = Builder.buf b "dst" Ir.EIdx32 in
  (* Constants requested inside regions still come from the entry block. *)
  Builder.for0 b "i" (Builder.index b 0) c1 (fun i ->
      let c1'' = Builder.index b 1 in
      check "cached inside region" true (c1 == c1'');
      Builder.store b dst i c1'');
  let fn = Builder.finish b "c" in
  check "verifies" true (Verify.check_result fn = Ok ())

let test_for_carried () =
  let b = Builder.create () in
  let n = Builder.scalar_param b "n" Ir.Index in
  let dst = Builder.buf b "dst" Ir.EF64 in
  let c0 = Builder.index b 0 in
  let z = Builder.f64 b 0. in
  let results =
    Builder.for_ b ~carried:[ ("acc", Ir.F64, z) ] "i" c0 n (fun _i args ->
        [ Builder.fadd b (List.hd args) (Builder.f64 b 1.) ])
  in
  Builder.store b dst c0 (List.hd results);
  let fn = Builder.finish b "sum" in
  check "verifies" true (Verify.check_result fn = Ok ())

let test_while_carried () =
  let b = Builder.create () in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  let c1 = Builder.index b 1 in
  let results =
    Builder.while_ b
      [ ("i", Ir.Index, c0) ]
      (fun args -> Builder.icmp b Ir.Ult (List.hd args) n)
      (fun args -> [ Builder.iadd b (List.hd args) c1 ])
  in
  check_int "one result" 1 (List.length results);
  let fn = Builder.finish b "count" in
  check "verifies" true (Verify.check_result fn = Ok ())

let test_verify_rejects_out_of_scope () =
  (* Hand-build a function using a loop-local value after the loop. *)
  let b = Builder.create () in
  let n = Builder.scalar_param b "n" Ir.Index in
  let dst = Builder.buf b "dst" Ir.EIdx32 in
  let c0 = Builder.index b 0 in
  let leaked = ref c0 in
  Builder.for0 b "i" c0 n (fun i ->
      leaked := Builder.iadd b i i;
      Builder.store b dst c0 i);
  Builder.store b dst c0 !leaked;
  let fn = Builder.finish b "bad" in
  match Verify.check_result fn with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verifier accepted out-of-scope use"

let test_verify_rejects_double_def () =
  let v = { Ir.vid = 0; vname = "x"; vty = Ir.Index } in
  let fn =
    { Ir.fn_name = "dup"; fn_params = [];
      fn_body =
        [ Ir.Let (v, Ir.Const (Ir.Cidx 1)); Ir.Let (v, Ir.Const (Ir.Cidx 2)) ];
      fn_nvalues = 1; fn_nbufs = 0 }
  in
  match Verify.check_result fn with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verifier accepted double definition"

let test_verify_rejects_bad_yield () =
  let iv = { Ir.vid = 0; vname = "i"; vty = Ir.Index } in
  let lo = { Ir.vid = 1; vname = "lo"; vty = Ir.Index } in
  let arg = { Ir.vid = 2; vname = "a"; vty = Ir.F64 } in
  let fn =
    { Ir.fn_name = "badyield"; fn_params = [];
      fn_body =
        [ Ir.Let (lo, Ir.Const (Ir.Cidx 0));
          Ir.For
            { Ir.f_iv = iv; f_lo = lo; f_hi = lo; f_step = lo;
              f_carried = [ (arg, lo) ];   (* f64 arg, index init: invalid *)
              f_results = []; f_body = []; f_yield = [ arg ]; f_tag = "" } ];
      fn_nvalues = 3; fn_nbufs = 0 }
  in
  match Verify.check_result fn with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verifier accepted mistyped iter_arg"

let test_printer_mentions_ops () =
  let fn = sample_fn () in
  let s = Printer.to_string fn in
  List.iter
    (fun frag ->
      check ("printer contains " ^ frag) true
        (Astring_contains.contains s frag))
    [ "func.func @incr"; "scf.for"; "memref.load"; "memref.store";
      "arith.addf" ]

let test_printer_unique_names () =
  (* Two sibling loops with identically-named locals must print uniquely. *)
  let b = Builder.create () in
  let n = Builder.scalar_param b "n" Ir.Index in
  let dst = Builder.buf b "dst" Ir.EIdx32 in
  let c0 = Builder.index b 0 in
  let mk () =
    Builder.for0 b "i" c0 n (fun i ->
        let x = Builder.let_ b "x" Ir.Index (Ir.Ibin (Ir.Iadd, i, i)) in
        Builder.store b dst i x)
  in
  mk ();
  mk ();
  let fn = Builder.finish b "two" in
  let s = Printer.to_string fn in
  (* The second loop's %x must have been renamed. *)
  check "renamed duplicate" true (Astring_contains.contains s "%x_")

let test_rewrite_def_table_and_loads () =
  let fn = sample_fn () in
  let loads = Rewrite.loads fn in
  check_int "one load" 1 (List.length loads);
  let t = Rewrite.def_table fn in
  let v, buf, _ = List.hd loads in
  (match t.(v.Ir.vid) with
   | Some (Ir.Load (b', _)) -> check_str "load buffer" "src" b'.Ir.bname
   | _ -> Alcotest.fail "def table missing load");
  check "contains_for" true (Rewrite.contains_for fn.Ir.fn_body);
  check "buffer name" true (buf.Ir.bname = "src")

let test_map_fors_innermost () =
  let b = Builder.create () in
  let n = Builder.scalar_param b "n" Ir.Index in
  let dst = Builder.buf b "dst" Ir.EIdx32 in
  let c0 = Builder.index b 0 in
  Builder.for0 b "i" c0 n (fun i ->
      Builder.for0 b "j" c0 n (fun j ->
          let s = Builder.iadd b i j in
          Builder.store b dst j s));
  let fn = Builder.finish b "nest" in
  let seen = ref [] in
  let (_ : Ir.func) =
    Rewrite.map_fors
      (fun ~innermost fl ->
        seen := (fl.Ir.f_iv.Ir.vname, innermost) :: !seen;
        fl)
      fn
  in
  check "j innermost" true (List.assoc "j" !seen);
  check "i not innermost" false (List.assoc "i" !seen)

let test_counts () =
  let fn = sample_fn () in
  let c = Ir.counts fn in
  (* consts c0 and 1.0, load, fadd inside the loop. *)
  check_int "lets" 5 c.Ir.n_lets;
  check_int "prefetches" 0 c.Ir.n_prefetches

let test_licm_hoists_invariant () =
  let b = Builder.create () in
  let dst = Builder.buf b "dst" Ir.EIdx32 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let m = Builder.scalar_param b "m" Ir.Index in
  let c0 = Builder.index b 0 in
  Builder.for0 b "i" c0 n (fun i ->
      (* n * m is invariant; i + inv is not; the store pins the loop. *)
      let inv = Builder.imul b n m in
      let x = Builder.iadd b i inv in
      Builder.store b dst i x);
  let fn = Builder.finish b "f" in
  let fn', st = Licm.run fn in
  check_int "hoisted one" 1 st.Licm.hoisted;
  (* The multiply now precedes the loop at the top level. *)
  let top_muls =
    List.length
      (List.filter
         (function Ir.Let (_, Ir.Ibin (Ir.Imul, _, _)) -> true | _ -> false)
         fn'.Ir.fn_body)
  in
  check_int "mul at top" 1 top_muls;
  check "still verifies" true (Verify.check_result fn' = Ok ())

let test_licm_leaves_loads () =
  let b = Builder.create () in
  let src = Builder.buf b "src" Ir.EF64 in
  let dst = Builder.buf b "dst" Ir.EF64 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  Builder.for0 b "i" c0 n (fun i ->
      (* src[0] is loop-invariant but loads may alias the store. *)
      let x = Builder.load b src c0 in
      Builder.store b dst i x);
  let fn = Builder.finish b "f" in
  let _, st = Licm.run fn in
  check_int "loads stay" 0 st.Licm.hoisted

let test_licm_chain () =
  (* A chain of invariants hoists together. *)
  let b = Builder.create () in
  let dst = Builder.buf b "dst" Ir.EIdx32 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  Builder.for0 b "i" c0 n (fun i ->
      let a = Builder.iadd b n n in
      let bb = Builder.imul b a n in
      let x = Builder.iadd b i bb in
      Builder.store b dst i x);
  let fn = Builder.finish b "f" in
  let _, st = Licm.run fn in
  check_int "both hoisted" 2 st.Licm.hoisted

let test_fold_arith () =
  let b = Builder.create () in
  let dst = Builder.buf b "dst" Ir.EIdx32 in
  let c3 = Builder.index b 3 in
  let c4 = Builder.index b 4 in
  let s = Builder.iadd b c3 c4 in
  let p = Builder.imul b s (Builder.index b 2) in
  Builder.store b dst (Builder.index b 0) p;
  let fn = Builder.finish b "f" in
  let fn', st = Fold.run fn in
  check "folded some" true (st.Fold.folded >= 2);
  (* The product is now a constant 14. *)
  let has_c14 =
    List.exists
      (function Ir.Let (_, Ir.Const (Ir.Cidx 14)) -> true | _ -> false)
      fn'.Ir.fn_body
  in
  check "constant 14" true has_c14

let test_fold_identities () =
  let b = Builder.create () in
  let dst = Builder.buf b "dst" Ir.EIdx32 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  let c1 = Builder.index b 1 in
  let x1 = Builder.imul b n c1 in        (* n * 1 -> n *)
  let x2 = Builder.iadd b x1 c0 in       (* x + 0 -> x *)
  Builder.store b dst c0 x2;
  let fn = Builder.finish b "f" in
  let _, st = Fold.run fn in
  check_int "two identities" 2 st.Fold.folded

let test_fold_cmp_select () =
  let b = Builder.create () in
  let dst = Builder.buf b "dst" Ir.EIdx32 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  let t = Builder.icmp b Ir.Ule n n in   (* always true *)
  let s = Builder.select b t n c0 in     (* select true -> n *)
  Builder.store b dst c0 s;
  let fn = Builder.finish b "f" in
  let _, st = Fold.run fn in
  check "cmp+select folded" true (st.Fold.folded >= 2)

(* --- Printer/Parse round-trip and malformed-input fuzzing ------------

   Random well-typed functions — expression trees over loads, the scalar
   parameter and loop induction variables, under random combinations of
   counted loops, carried accumulators, while loops and branches — must
   print, parse back alpha-equal, and reprint byte-identically.  Random
   mutations of valid listings and raw garbage must produce a labelled
   {!Parse.Error} (1-based line:col) or a clean [Result.Error]: never an
   unlabelled exception. *)

type ix =
  | XLit of int
  | XParam
  | XIv of int                       (* induction var, innermost first *)
  | XBin of Ir.ibinop * ix * ix
  | XSel of Ir.icmp * ix * ix        (* select (a cmp b) a b *)

type rfn_plan = {
  pl_expr : ix;
  pl_loops : int;        (* 0-2 nested counted loops around the store *)
  pl_carried : bool;     (* a carried-accumulator loop *)
  pl_wloop : bool;       (* a while loop *)
  pl_branch : bool;      (* store under scf.if *)
  pl_float : bool;       (* float load/add chain vs pure index store *)
}

let gen_ix =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           let leaf =
             oneof
               [ map (fun i -> XLit i) (int_range 0 9);
                 pure XParam;
                 map (fun k -> XIv k) (int_range 0 2) ]
           in
           if n = 0 then leaf
           else
             frequency
               [ (2, leaf);
                 ( 4,
                   let* op =
                     oneofl
                       [ Ir.Iadd; Ir.Isub; Ir.Imul; Ir.Imin; Ir.Imax;
                         Ir.Iand; Ir.Ior; Ir.Ixor ]
                   in
                   let* a = self (n / 2) in
                   let* b = self (n / 2) in
                   pure (XBin (op, a, b)) );
                 ( 1,
                   let* cmp =
                     oneofl [ Ir.Eq; Ir.Ne; Ir.Ult; Ir.Ule; Ir.Slt; Ir.Sge ]
                   in
                   let* a = self (n / 2) in
                   let* b = self (n / 2) in
                   pure (XSel (cmp, a, b)) ) ]))

let gen_rfn_plan =
  QCheck2.Gen.(
    let* pl_expr = gen_ix in
    let* pl_loops = int_range 0 2 in
    let* pl_carried = bool in
    let* pl_wloop = bool in
    let* pl_branch = bool in
    let* pl_float = bool in
    pure { pl_expr; pl_loops; pl_carried; pl_wloop; pl_branch; pl_float })

let build_rfn (p : rfn_plan) : Ir.func =
  let b = Builder.create () in
  let src = Builder.buf b "src" Ir.EF64 in
  let out = Builder.buf b "out" Ir.EF64 in
  let iout = Builder.buf b "iout" Ir.EIdx64 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  let c1 = Builder.index b 1 in
  let rec bx ivs = function
    | XLit i -> Builder.index b i
    | XParam -> n
    | XIv k ->
      (match ivs with [] -> n | _ -> List.nth ivs (k mod List.length ivs))
    | XBin (op, a, c) -> Builder.ibin b op (bx ivs a) (bx ivs c)
    | XSel (cmp, a, c) ->
      let va = bx ivs a and vc = bx ivs c in
      Builder.select b (Builder.icmp b cmp va vc) va vc
  in
  let body ivs =
    let idx = bx ivs p.pl_expr in
    if p.pl_float then begin
      let x = Builder.load b src idx in
      Builder.store b out idx (Builder.fadd b x (Builder.f64 b 0.5))
    end
    else Builder.store b iout idx idx
  in
  if p.pl_carried then begin
    let fin =
      Builder.for_ b "k" c0 n
        ~carried:[ ("acc", Ir.Index, c0) ]
        (fun k args -> [ Builder.iadd b (List.hd args) k ])
    in
    Builder.store b iout c0 (List.hd fin)
  end;
  if p.pl_wloop then begin
    let ws =
      Builder.while_ b
        [ ("w", Ir.Index, n) ]
        (fun args -> Builder.icmp b Ir.Sgt (List.hd args) c0)
        (fun args -> [ Builder.isub b (List.hd args) c1 ])
    in
    Builder.store b iout c1 (List.hd ws)
  end;
  let rec nest d ivs =
    if d = 0 then begin
      if p.pl_branch then
        Builder.if_ b
          (Builder.icmp b Ir.Ult n (Builder.index b 7))
          (fun () -> body ivs)
          (fun () -> body ivs)
      else body ivs
    end
    else
      Builder.for0 b (Printf.sprintf "i%d" d) c0 n (fun iv ->
          nest (d - 1) (iv :: ivs))
  in
  nest p.pl_loops [];
  Builder.finish b "fuzz"

let qcheck_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"random funcs round-trip alpha-equal"
    gen_rfn_plan (fun p ->
      let fn = build_rfn p in
      let text = Printer.to_string fn in
      match Parse.func_result text with
      | Error m -> QCheck2.Test.fail_reportf "no parse: %s" m
      | Ok fn2 ->
        Printer.to_string fn2 = text && Parse.equal_func fn2 fn)

(* A mutation never produces an unlabelled exception: [func] may raise
   only [Parse.Error] with 1-based coordinates, [func_result] never
   raises and formats the position as "line:col: ". *)
let labelled_failure_only text =
  (match Parse.func text with
   | (_ : Ir.func) -> ()
   | exception Parse.Error { line; col; msg = _ } ->
     if line < 1 || col < 1 then
       QCheck2.Test.fail_reportf "non-positive error position %d:%d" line col
   | exception Invalid_argument _ -> ()
     (* the verifier label for structurally bad but parseable text *));
  match Parse.func_result text with
  | Ok (_ : Ir.func) -> true
  | Error m -> String.length m > 0

let gen_mutation =
  QCheck2.Gen.(
    let* plan = gen_rfn_plan in
    let* kind = int_range 0 3 in
    let* at = float_range 0. 1. in
    let* ch = oneofl [ '%'; '('; ')'; '{'; '}'; '='; ':'; ','; '@'; 'x'; '9' ] in
    pure (plan, kind, at, ch))

let qcheck_mutated_listing =
  QCheck2.Test.make ~count:300 ~name:"mutated listings fail labelled"
    gen_mutation (fun (plan, kind, at, ch) ->
      let text = Printer.to_string (build_rfn plan) in
      let n = String.length text in
      let pos = min (n - 1) (int_of_float (at *. float_of_int n)) in
      let mutated =
        match kind with
        | 0 -> String.sub text 0 pos                       (* truncate *)
        | 1 ->                                             (* flip a char *)
          String.mapi (fun i c -> if i = pos then ch else c) text
        | 2 ->                                             (* delete a span *)
          String.sub text 0 pos
          ^ String.sub text (min n (pos + 5)) (n - min n (pos + 5))
        | _ ->                                             (* insert a token *)
          String.sub text 0 pos ^ String.make 3 ch
          ^ String.sub text pos (n - pos)
      in
      labelled_failure_only mutated)

let qcheck_garbage =
  QCheck2.Test.make ~count:300 ~name:"garbage input fails labelled"
    QCheck2.Gen.(string_size ~gen:(oneofl
      [ 'f'; 'u'; 'n'; 'c'; '.'; '%'; '('; ')'; '{'; '}'; '=' ; ':'; ',';
        '<'; '>'; 'x'; 'i'; '6'; '4'; ' '; '\n'; '"'; '-' ]) (int_range 0 80))
    labelled_failure_only

let suite =
  [ Alcotest.test_case "builder basic" `Quick test_builder_basic;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_mutated_listing;
    QCheck_alcotest.to_alcotest qcheck_garbage;
    Alcotest.test_case "licm hoists invariants" `Quick
      test_licm_hoists_invariant;
    Alcotest.test_case "licm keeps loads" `Quick test_licm_leaves_loads;
    Alcotest.test_case "licm chains" `Quick test_licm_chain;
    Alcotest.test_case "fold arith" `Quick test_fold_arith;
    Alcotest.test_case "fold identities" `Quick test_fold_identities;
    Alcotest.test_case "fold cmp/select" `Quick test_fold_cmp_select;
    Alcotest.test_case "builder type errors" `Quick test_builder_type_errors;
    Alcotest.test_case "const cache" `Quick test_builder_const_cache;
    Alcotest.test_case "for iter_args" `Quick test_for_carried;
    Alcotest.test_case "while carried" `Quick test_while_carried;
    Alcotest.test_case "verify out-of-scope" `Quick
      test_verify_rejects_out_of_scope;
    Alcotest.test_case "verify double def" `Quick test_verify_rejects_double_def;
    Alcotest.test_case "verify bad yield" `Quick test_verify_rejects_bad_yield;
    Alcotest.test_case "printer ops" `Quick test_printer_mentions_ops;
    Alcotest.test_case "printer unique names" `Quick test_printer_unique_names;
    Alcotest.test_case "rewrite loads/defs" `Quick
      test_rewrite_def_table_and_loads;
    Alcotest.test_case "map_fors innermost" `Quick test_map_fors_innermost;
    Alcotest.test_case "counts" `Quick test_counts ]
