(* Property tests for the interpreter's functional semantics: random
   arithmetic expression trees are built as IR, interpreted, and compared
   against direct evaluation; control-flow constructs are checked against
   hand computations. *)

module Runtime = Asap_sim.Runtime
module Interp = Asap_sim.Interp
open Asap_ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let free_mem =
  { Interp.m_load = (fun ~pc:_ ~addr:_ ~at -> at + 1);
    m_store = (fun ~pc:_ ~addr:_ ~at:_ -> ());
    m_prefetch = (fun ~addr:_ ~locality:_ ~at:_ -> ()) }

(* Random integer expression trees over a small positive domain (keeps
   division and shift well-defined). *)
type iexpr =
  | Lit of int
  | Bin of Ir.ibinop * iexpr * iexpr

let rec eval_iexpr = function
  | Lit i -> i
  | Bin (op, a, b) ->
    let x = eval_iexpr a and y = eval_iexpr b in
    (match op with
     | Ir.Iadd -> x + y
     | Ir.Isub -> x - y
     | Ir.Imul -> x * y
     | Ir.Idiv -> x / y
     | Ir.Irem -> x mod y
     | Ir.Imin -> min x y
     | Ir.Imax -> max x y
     | Ir.Iand -> x land y
     | Ir.Ior -> x lor y
     | Ir.Ixor -> x lxor y
     | Ir.Ishl -> x lsl min y 8)

let rec build_iexpr b = function
  | Lit i -> Builder.index b i
  | Bin (op, x, y) ->
    let vx = build_iexpr b x and vy = build_iexpr b y in
    (match op with
     | Ir.Ishl ->
       (* Clamp the shift as the evaluator does. *)
       let c8 = Builder.index b 8 in
       Builder.ibin b Ir.Ishl vx (Builder.imin b vy c8)
     | op -> Builder.ibin b op vx vy)

let gen_iexpr =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           if n = 0 then map (fun i -> Lit i) (int_range 1 64)
           else
             frequency
               [ (1, map (fun i -> Lit i) (int_range 1 64));
                 ( 3,
                   let* op =
                     oneofl
                       [ Ir.Iadd; Ir.Isub; Ir.Imul; Ir.Idiv; Ir.Irem;
                         Ir.Imin; Ir.Imax; Ir.Iand; Ir.Ior; Ir.Ixor;
                         Ir.Ishl ]
                   in
                   let* a = self (n / 2) in
                   let* b = self (n / 2) in
                   pure (Bin (op, a, b)) ) ]))

let qcheck_int_expr =
  QCheck2.Test.make ~count:300 ~name:"interp evaluates integer expressions"
    gen_iexpr (fun e ->
      QCheck2.assume
        (match eval_iexpr e with
         | (_ : int) -> true
         | exception Division_by_zero -> false);
      let b = Builder.create () in
      let dst = Builder.buf b "dst" Ir.EIdx64 in
      let v = build_iexpr b e in
      Builder.store b dst (Builder.index b 0) v;
      let fn = Builder.finish b "expr" in
      let out = Array.make 1 0 in
      let bufs = Runtime.layout fn [ (dst, Runtime.RI out) ] in
      let (_ : Interp.result) =
        Interp.run fn ~bufs ~scalars:[] ~mem:free_mem
      in
      out.(0) = eval_iexpr e)

(* Also run the folding pass over the same trees: results must agree. *)
let qcheck_fold_preserves =
  QCheck2.Test.make ~count:300 ~name:"fold preserves expression values"
    gen_iexpr (fun e ->
      QCheck2.assume
        (match eval_iexpr e with
         | (_ : int) -> true
         | exception Division_by_zero -> false);
      let b = Builder.create () in
      let dst = Builder.buf b "dst" Ir.EIdx64 in
      let v = build_iexpr b e in
      Builder.store b dst (Builder.index b 0) v;
      let fn = Builder.finish b "expr" in
      let fn', _ = Fold.run fn in
      let out = Array.make 1 0 in
      let bufs = Runtime.layout fn' [ (dst, Runtime.RI out) ] in
      let (_ : Interp.result) =
        Interp.run fn' ~bufs ~scalars:[] ~mem:free_mem
      in
      out.(0) = eval_iexpr e)

let test_while_gauss () =
  (* sum 0..n-1 via a while loop with two carried values. *)
  let b = Builder.create () in
  let dst = Builder.buf b "dst" Ir.EIdx64 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  let c1 = Builder.index b 1 in
  let results =
    Builder.while_ b
      [ ("i", Ir.Index, c0); ("sum", Ir.Index, c0) ]
      (fun args -> Builder.icmp b Ir.Ult (List.nth args 0) n)
      (fun args ->
        let i = List.nth args 0 and sum = List.nth args 1 in
        [ Builder.iadd b i c1; Builder.iadd b sum i ])
  in
  Builder.store b dst c0 (List.nth results 1);
  let fn = Builder.finish b "gauss" in
  let out = Array.make 1 0 in
  let bufs = Runtime.layout fn [ (dst, Runtime.RI out) ] in
  let (_ : Interp.result) =
    Interp.run fn ~bufs ~scalars:[ 10 ] ~mem:free_mem
  in
  check_int "gauss" 45 out.(0)

let test_if_branches () =
  let b = Builder.create () in
  let dst = Builder.buf b "dst" Ir.EIdx32 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  let c5 = Builder.index b 5 in
  let cond = Builder.icmp b Ir.Ult n c5 in
  Builder.if_ b cond
    (fun () -> Builder.store b dst c0 (Builder.index b 111))
    (fun () -> Builder.store b dst c0 (Builder.index b 222));
  let fn = Builder.finish b "branch" in
  let run n =
    let out = Array.make 1 0 in
    let bufs = Runtime.layout fn [ (dst, Runtime.RI out) ] in
    let (_ : Interp.result) =
      Interp.run fn ~bufs ~scalars:[ n ] ~mem:free_mem
    in
    out.(0)
  in
  check_int "then branch" 111 (run 3);
  check_int "else branch" 222 (run 9)

let test_nested_carried_loops () =
  (* sum of i*j over a 2-D space using nested iter_args. *)
  let b = Builder.create () in
  let dst = Builder.buf b "dst" Ir.EIdx64 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let c0 = Builder.index b 0 in
  let outer =
    Builder.for_ b ~carried:[ ("acc", Ir.Index, c0) ] "i" c0 n
      (fun i args ->
        let inner =
          Builder.for_ b
            ~carried:[ ("acc2", Ir.Index, List.hd args) ]
            "j" c0 n
            (fun j args' ->
              [ Builder.iadd b (List.hd args') (Builder.imul b i j) ])
        in
        inner)
  in
  Builder.store b dst c0 (List.hd outer);
  let fn = Builder.finish b "nest" in
  let out = Array.make 1 0 in
  let bufs = Runtime.layout fn [ (dst, Runtime.RI out) ] in
  let (_ : Interp.result) = Interp.run fn ~bufs ~scalars:[ 4 ] ~mem:free_mem in
  (* sum_{i<4} sum_{j<4} i*j = (0+1+2+3)^2 = 36 *)
  check_int "nested sum" 36 out.(0)

let test_dim_and_cast () =
  let b = Builder.create () in
  let src = Builder.buf b "src" Ir.EF64 in
  let dst = Builder.buf b "dst" Ir.EF64 in
  let c0 = Builder.index b 0 in
  let d = Builder.dim b src in
  let f = Builder.cast b Ir.F64 d in
  Builder.store b dst c0 f;
  let fn = Builder.finish b "dim" in
  let out = Array.make 1 0. in
  let bufs =
    Runtime.layout fn
      [ (src, Runtime.RF (Array.make 17 0.)); (dst, Runtime.RF out) ]
  in
  let (_ : Interp.result) = Interp.run fn ~bufs ~scalars:[] ~mem:free_mem in
  check "dim->cast" true (out.(0) = 17.)

let test_byte_buffer_ops () =
  (* i8 loads/stores wrap at 8 bits, as bytes do. *)
  let b = Builder.create () in
  let buf = Builder.buf b "buf" Ir.EI8 in
  let c0 = Builder.index b 0 in
  let x = Builder.load b buf c0 in
  let big = Builder.let_ b "big" Ir.I64 (Ir.Const (Ir.Ci64 300)) in
  let y = Builder.ibin b Ir.Ior x big in
  Builder.store b buf c0 y;
  let fn = Builder.finish b "bytes" in
  let data = Bytes.make 1 '\001' in
  let bufs = Runtime.layout fn [ (buf, Runtime.RB data) ] in
  let (_ : Interp.result) = Interp.run fn ~bufs ~scalars:[] ~mem:free_mem in
  check_int "masked to 8 bits" ((300 lor 1) land 0xff)
    (Bytes.get_uint8 data 0)

(* --- Randomized three-engine differential harness ---------------------

   Random sparse matrices — varying density, bandedness, empty rows and
   columns, degenerate 1xN / Nx1 and nnz = 0 shapes — are driven through
   every (kernel x format x variant) triple under all three execution
   engines.  Structural equality of reports and outputs is the whole
   cycle- and value-exactness contract at once (cycles, instruction mix,
   every cache counter, float summation order — see test_engine.ml); the
   interpreter result is additionally checked against the dense
   reference.  Tier-1 runs a pinned kernel x format cover plus a seeded
   sample of the grid (~40 cells); set ASAP_DIFF_FULL=1 to sweep every
   cell. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Rng = Asap_workloads.Rng

(* One random matrix per seed: a shape class (square, wide, tall, 1xN,
   Nx1, tiny) crossed with a fill style (empty, sparse, dense-ish,
   banded, clustered — the last leaving rows and columns empty between
   populated ones). Coordinates are deduped, values in [-1, 1). *)
let gen_coo rng =
  let rows, cols =
    match Rng.int rng 6 with
    | 0 -> (1, 1 + Rng.int rng 60)                   (* 1xN *)
    | 1 -> (1 + Rng.int rng 60, 1)                   (* Nx1 *)
    | 2 -> (2 + Rng.int rng 7, 30 + Rng.int rng 30)  (* wide *)
    | 3 -> (30 + Rng.int rng 30, 2 + Rng.int rng 7)  (* tall *)
    | 4 -> (1 + Rng.int rng 6, 1 + Rng.int rng 6)    (* tiny *)
    | _ -> (8 + Rng.int rng 40, 8 + Rng.int rng 40)  (* general *)
  in
  let style = Rng.int rng 5 in
  let target =
    match style with
    | 0 -> 0                                             (* empty *)
    | 1 -> 1 + Rng.int rng (max 1 (rows * cols / 8))     (* sparse *)
    | 2 -> max 1 (rows * cols / 2)                       (* dense-ish *)
    | _ -> 1 + Rng.int rng (max 1 (2 * (rows + cols)))   (* banded/clustered *)
  in
  let band = 1 + Rng.int rng 4 in
  let seen = Hashtbl.create 64 in
  let triples = ref [] in
  for _ = 1 to target do
    let i0 = Rng.int rng rows and j0 = Rng.int rng cols in
    (* Clustered fill snaps coordinates down, leaving every row not
       divisible by 3 and every odd column empty. *)
    let i = if style = 4 then i0 - (i0 mod 3) else i0 in
    let j =
      if style = 3 then begin
        let centre =
          if rows = 1 then j0 else i * (cols - 1) / max 1 (rows - 1)
        in
        let lo = max 0 (centre - band) and hi = min (cols - 1) (centre + band) in
        lo + Rng.int rng (hi - lo + 1)
      end
      else if style = 4 then j0 - (j0 mod 2)
      else j0
    in
    if not (Hashtbl.mem seen (i, j)) then begin
      Hashtbl.add seen (i, j) ();
      triples := (i, j, (2. *. Rng.float rng) -. 1.) :: !triples
    end
  done;
  Coo.of_triples ~rows ~cols (List.rev !triples)

let diff_machine = Machine.gracemont_scaled ()
let diff_kernels = [ ("spmv", `Spmv); ("spmm", `Spmm); ("sddmm", `Sddmm) ]

let diff_encodings () =
  [ Encoding.coo (); Encoding.csr (); Encoding.csc (); Encoding.dcsr ();
    Encoding.bsr ~bh:2 ~bw:2 (); Encoding.bsr ~bh:2 ~bw:3 () ]

let diff_variants =
  [ ("baseline", Pipeline.Baseline);
    ("asap", Pipeline.Asap { Asap.default with Asap.distance = 4 });
    ("aj", Pipeline.Ainsworth_jones { Aj.default with Aj.distance = 4 }) ]

let n_matrix_seeds = 8
let matrix_cache : (int, Coo.t) Hashtbl.t = Hashtbl.create 8

let matrix_for seed =
  match Hashtbl.find_opt matrix_cache seed with
  | Some coo -> coo
  | None ->
    let coo = gen_coo (Rng.create (0xd1ff + seed)) in
    Hashtbl.add matrix_cache seed coo;
    coo

let same_result name (a : Driver.result) (b : Driver.result) =
  check (name ^ ": report") true (a.Driver.report = b.Driver.report);
  check (name ^ ": nnz") true (a.Driver.nnz = b.Driver.nnz);
  check (name ^ ": out_f") true (a.Driver.out_f = b.Driver.out_f);
  check (name ^ ": out_b") true (a.Driver.out_b = b.Driver.out_b)

let run_cell (mseed, (kname, kernel), enc, (vname, v)) =
  let coo = matrix_for mseed in
  let name =
    Printf.sprintf "%s/%s/%s m%d [%dx%d nnz=%d]" kname enc.Encoding.name
      vname mseed coo.Coo.dims.(0) coo.Coo.dims.(1) (Coo.nnz coo)
  in
  let f engine =
    match kernel with
    | `Spmv -> Driver.spmv ~engine diff_machine v enc coo
    | `Spmm -> Driver.spmm ~engine ~n:3 diff_machine v enc coo
    | `Sddmm -> Driver.sddmm ~engine ~kk:5 diff_machine v enc coo
  in
  let r_i = f `Interp in
  same_result (name ^ " compiled") r_i (f `Compiled);
  same_result (name ^ " bytecode") r_i (f `Bytecode);
  let err =
    match kernel with
    | `Spmv -> Driver.check_spmv coo r_i
    | `Spmm -> Driver.check_spmm coo ~n:3 r_i
    | `Sddmm -> Driver.check_sddmm coo ~kk:5 r_i
  in
  check (name ^ ": against dense reference") true (err <= 1e-9)

let diff_grid () =
  List.concat_map
    (fun mseed ->
      List.concat_map
        (fun k ->
          List.concat_map
            (fun enc -> List.map (fun v -> (mseed, k, enc, v)) diff_variants)
            (diff_encodings ()))
        diff_kernels)
    (List.init n_matrix_seeds (fun i -> i + 1))

(* Every (kernel, format) pair at least once, variants and matrices
   rotating with the cell position — 18 cells. *)
let test_differential_pinned () =
  let encs = Array.of_list (diff_encodings ()) in
  let vars = Array.of_list diff_variants in
  List.iteri
    (fun ki (kname, k) ->
      Array.iteri
        (fun ei enc ->
          let v = vars.((ki + ei) mod Array.length vars) in
          let mseed = 1 + ((ki + ei) mod n_matrix_seeds) in
          run_cell (mseed, (kname, k), enc, v))
        encs)
    diff_kernels

(* 22 more cells drawn without replacement from the full grid by a fixed
   seed — or, under ASAP_DIFF_FULL=1, every cell. *)
let test_differential_random () =
  let grid = Array.of_list (diff_grid ()) in
  if Sys.getenv_opt "ASAP_DIFF_FULL" <> None then Array.iter run_cell grid
  else begin
    let rng = Rng.create 0xd1ff in
    let picked = Hashtbl.create 64 in
    let drawn = ref 0 in
    while !drawn < 22 do
      let i = Rng.int rng (Array.length grid) in
      if not (Hashtbl.mem picked i) then begin
        Hashtbl.add picked i ();
        incr drawn;
        run_cell grid.(i)
      end
    done
  end

(* The matrix pool itself must keep exercising the edge shapes the
   harness is about — a generator drift that stopped producing them
   would silently weaken every cell above. *)
let test_generator_shape_coverage () =
  let pool = List.init n_matrix_seeds (fun i -> matrix_for (i + 1)) in
  let has p = List.exists p pool in
  check "pool has a degenerate 1xN or Nx1 shape" true
    (has (fun c -> c.Coo.dims.(0) = 1 || c.Coo.dims.(1) = 1));
  check "pool has an empty row or column" true
    (has (fun c ->
         let rows = c.Coo.dims.(0) and cols = c.Coo.dims.(1) in
         let rseen = Array.make rows false and cseen = Array.make cols false in
         Array.iter
           (fun co ->
             rseen.(co.(0)) <- true;
             cseen.(co.(1)) <- true)
           c.Coo.coords;
         Array.exists not rseen || Array.exists not cseen));
  check "pool nnz spread spans sparse to dense-ish" true
    (let densities =
       List.map
         (fun c ->
           float_of_int (Coo.nnz c)
           /. float_of_int (max 1 (c.Coo.dims.(0) * c.Coo.dims.(1))))
         pool
     in
     List.exists (fun d -> d < 0.15) densities
     && List.exists (fun d -> d > 0.3) densities)

let suite =
  [ QCheck_alcotest.to_alcotest qcheck_int_expr;
    QCheck_alcotest.to_alcotest qcheck_fold_preserves;
    Alcotest.test_case "while gauss" `Quick test_while_gauss;
    Alcotest.test_case "if branches" `Quick test_if_branches;
    Alcotest.test_case "nested carried loops" `Quick
      test_nested_carried_loops;
    Alcotest.test_case "dim and cast" `Quick test_dim_and_cast;
    Alcotest.test_case "byte buffers" `Quick test_byte_buffer_ops;
    Alcotest.test_case "differential: kernel x format cover"
      `Quick test_differential_pinned;
    Alcotest.test_case "differential: seeded random sample" `Quick
      test_differential_random;
    Alcotest.test_case "differential: generator shape coverage" `Quick
      test_generator_shape_coverage ]
