(* Golden-file tests for the IR printer/parser round-trip: each checked-in
   test/golden/<kernel>_<variant>.ir must byte-match what the pipeline
   emits today, parse back, reprint identically, and be alpha-equal to the
   freshly compiled function.  Regenerate deliberately with
   [dune exec tools/gen_golden.exe] and review the diff. *)

module Kernel = Asap_lang.Kernel
module Encoding = Asap_tensor.Encoding
module Pipeline = Asap_core.Pipeline
module Printer = Asap_ir.Printer
module Parse = Asap_ir.Parse

let check = Alcotest.(check bool)
let check_s = Alcotest.(check string)

let variants =
  [ ("baseline", Pipeline.Baseline);
    ("asap", Pipeline.Asap Asap_prefetch.Asap.default);
    ("aj", Pipeline.Ainsworth_jones Asap_prefetch.Ainsworth_jones.default) ]

let cases =
  let open Encoding in
  [ ("spmv_coo", fun () -> Kernel.spmv ~enc:(coo ()) ());
    ("spmv_csr", fun () -> Kernel.spmv ~enc:(csr ()) ());
    ("spmv_csc", fun () -> Kernel.spmv ~enc:(csc ()) ());
    ("spmv_dcsr", fun () -> Kernel.spmv ~enc:(dcsr ()) ());
    ("spmv_bsr", fun () -> Kernel.spmv ~enc:(bsr ~bh:2 ~bw:2 ()) ());
    ("spmm_csr", fun () -> Kernel.spmm ~enc:(csr ()) ());
    ("sddmm_csr", fun () -> Kernel.sddmm ~enc:(csr ()) ());
    ("ttv_csf", fun () -> Kernel.ttv ~enc:(csf 3) ()) ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let golden_path name = Filename.concat "golden" (name ^ ".ir")

let test_golden () =
  List.iter
    (fun (kname, mk) ->
      List.iter
        (fun (vname, v) ->
          let name = Printf.sprintf "%s_%s" kname vname in
          let path = golden_path name in
          check (name ^ ": golden file present") true (Sys.file_exists path);
          let golden = read_file path in
          let c = Pipeline.compile (mk ()) v in
          let printed = Printer.to_string c.Pipeline.fn in
          check_s (name ^ ": printer output matches checked-in golden")
            golden printed;
          match Parse.func_result golden with
          | Error m -> Alcotest.fail (name ^ ": golden does not parse: " ^ m)
          | Ok fn ->
            check_s (name ^ ": reprint is byte-identical") golden
              (Printer.to_string fn);
            check (name ^ ": parsed func alpha-equal to compiled") true
              (Parse.equal_func fn c.Pipeline.fn))
        variants)
    cases

(* The golden set must cover exactly the generator grid — a stray or
   missing .ir file is a drift signal even before contents diverge. *)
let test_golden_inventory () =
  let expect =
    List.concat_map
      (fun (k, _) -> List.map (fun (v, _) -> k ^ "_" ^ v ^ ".ir") variants)
      cases
    |> List.sort compare
  in
  let actual =
    Sys.readdir "golden" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ir")
    |> List.sort compare
  in
  check_s "golden inventory" (String.concat " " expect)
    (String.concat " " actual)

let suite =
  [ Alcotest.test_case "printer/parser golden round-trip" `Quick test_golden;
    Alcotest.test_case "golden inventory" `Quick test_golden_inventory ]
