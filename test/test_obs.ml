(* Observability-layer tests: the counter registry must be byte-identical
   across execution engines and unaffected by tracing (the sink hook is
   pure observation), the Chrome trace export must be well-formed (sorted
   timestamps, matched B/E span pairs per track), Driver.run must agree
   with the per-kernel wrappers it subsumes, and every counter name must
   sit in the DESIGN.md §3c catalogue. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Hp = Asap_sim.Hw_prefetcher
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Generate = Asap_workloads.Generate
module Sink = Asap_obs.Sink
module Chrome = Asap_obs.Chrome
module Registry = Asap_obs.Registry
module Jsonu = Asap_obs.Jsonu

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let machine = Machine.gracemont_scaled ()

let small_matrix seed =
  Generate.power_law ~seed ~rows:250 ~cols:250 ~avg_deg:5 ~alpha:2.0 ()

let asap_v = Pipeline.Asap { Asap.default with Asap.distance = 8 }

let run_with ~engine ~obs variant coo =
  let cfg = Driver.Cfg.make ~engine ~obs ~machine ~variant () in
  Driver.run cfg (Driver.Spmv (Encoding.csr ())) coo

(* --- Registry differential ------------------------------------------- *)

let test_registry_differential () =
  (* Four runs of the same kernel: {Interp, Compiled} x {tracing off,
     tracing on}. All four counter registries must be byte-identical —
     the engines are drop-ins and observation never perturbs timing. *)
  let coo = small_matrix 61 in
  List.iter
    (fun (vn, v) ->
      let runs =
        List.concat_map
          (fun engine ->
            List.map
              (fun traced ->
                let obs =
                  if traced then Chrome.sink (Chrome.create ())
                  else Sink.null
                in
                (run_with ~engine ~obs v coo).Driver.counters)
              [ false; true ])
          [ `Interp; `Compiled ]
      in
      match runs with
      | reference :: rest ->
        check (vn ^ ": some counters") true (reference <> []);
        List.iteri
          (fun i c ->
            check (Printf.sprintf "%s: registry %d = registry 0" vn (i + 1))
              true (c = reference))
          rest
      | [] -> assert false)
    [ ("baseline", Pipeline.Baseline); ("asap", asap_v);
      ("aj", Pipeline.Ainsworth_jones { Aj.default with Aj.distance = 8 }) ]

let test_counters_match_report () =
  (* The result's [counters] field is exactly the report's canonical
     export, and the registry round-trips through the assoc list. *)
  let coo = small_matrix 62 in
  let r = run_with ~engine:`Compiled ~obs:Sink.null asap_v coo in
  let assoc = Exec.Report.to_assoc r.Driver.report in
  check "counters = Report.to_assoc" true (r.Driver.counters = assoc);
  let rt = Registry.of_assoc assoc in
  check "of_assoc round-trip" true (Registry.to_assoc rt = assoc);
  check_int "absent counter reads 0" 0 (Registry.find rt "no.such.counter");
  let reg = Exec.Report.registry r.Driver.report in
  check "cycles counter = accessor" true
    (Registry.find reg "core.cycles" = Exec.Report.cycles r.Driver.report);
  check "sw issued counter = accessor" true
    (Registry.find reg "pf.sw.issued" = Exec.Report.sw_issued r.Driver.report)

(* --- Counter-name catalogue ------------------------------------------ *)

let catalogue_prefixes =
  [ "core."; "mem."; "l1."; "l2."; "l3."; "dram."; "pf."; "op." ]

let required_names =
  [ "core.threads"; "core.cycles"; "core.instructions"; "core.flops";
    "mem.loads"; "mem.stores"; "mem.prefetches"; "mem.demand.loads";
    "mem.demand.stores"; "l1.miss.demand"; "l2.miss.demand";
    "l3.miss.demand"; "dram.lines" ]

let test_catalogue () =
  let coo = small_matrix 63 in
  let r = run_with ~engine:`Compiled ~obs:Sink.null asap_v coo in
  let reg = Exec.Report.registry r.Driver.report in
  let names = Registry.names reg in
  List.iter
    (fun n ->
      check ("name in catalogue: " ^ n) true
        (List.exists
           (fun p ->
             String.length n > String.length p
             && String.sub n 0 (String.length p) = p)
           catalogue_prefixes))
    names;
  List.iter
    (fun n -> check ("required name present: " ^ n) true (List.mem n names))
    required_names;
  (* Every provenance — the six hardware prefetchers plus software — owns
     the full per-prefetcher breakdown. *)
  List.iter
    (fun slug ->
      List.iter
        (fun leaf ->
          let n = "pf." ^ slug ^ "." ^ leaf in
          check ("pf breakdown present: " ^ n) true (List.mem n names))
        [ "issued"; "useful"; "late"; "drop.no_mshr"; "drop.present";
          "evicted" ])
    [ "sw"; Hp.slug_of_id 0; Hp.slug_of_id 2; Hp.slug_of_id 3 ];
  (* ASaP actually prefetches on this kernel. *)
  check "pf.sw.issued > 0" true (Registry.find reg "pf.sw.issued" > 0);
  (* Per-op attribution sites resolve to buffer@loop names. *)
  check "some op.* counters" true
    (List.exists (fun n -> String.length n > 3 && String.sub n 0 3 = "op.")
       names);
  List.iter
    (fun (m : Exec.op_miss) ->
      check "op_miss pc attributable" true
        (m.Exec.om_pc >= 0 && m.Exec.om_pc < 0x10000);
      check "op_miss has buffer" true (m.Exec.om_buf <> "");
      check "op_miss loop tag has no spaces" true
        (not (String.contains m.Exec.om_loop ' ')))
    (Exec.Report.op_misses r.Driver.report)

(* --- Chrome trace golden validation ---------------------------------- *)

let trace_events coo =
  let c = Chrome.create () in
  let obs = Chrome.sink ~pf_name:Hp.slug_of_id c in
  let (_ : Driver.result) = run_with ~engine:`Compiled ~obs asap_v coo in
  check "events recorded" true (Chrome.n_events c > 0);
  match Chrome.to_json c with
  | Jsonu.Obj fields ->
    (match List.assoc_opt "traceEvents" fields with
     | Some (Jsonu.List evs) -> evs
     | _ -> Alcotest.fail "traceEvents missing or not a list")
  | _ -> Alcotest.fail "trace document is not an object"

let field name = function
  | Jsonu.Obj fields -> List.assoc_opt name fields
  | _ -> None

let str_field name ev =
  match field name ev with Some (Jsonu.Str s) -> Some s | _ -> None

let int_field name ev =
  match field name ev with Some (Jsonu.Int i) -> Some i | _ -> None

let test_chrome_golden () =
  let evs = trace_events (small_matrix 64) in
  check "trace is non-empty" true (evs <> []);
  (* Every event is an object carrying ph and pid; timed phases carry
     ts and tid. *)
  let last_ts = ref min_int in
  let spans : (int, int ref * int ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let ph =
        match str_field "ph" ev with
        | Some p -> p
        | None -> Alcotest.fail "event without ph"
      in
      check "pid present" true (int_field "pid" ev <> None);
      if ph <> "M" then begin
        let ts =
          match int_field "ts" ev with
          | Some t -> t
          | None -> Alcotest.fail "timed event without ts"
        in
        check "ts sorted non-decreasing" true (ts >= !last_ts);
        last_ts := ts;
        let tid =
          match int_field "tid" ev with
          | Some t -> t
          | None -> Alcotest.fail "timed event without tid"
        in
        match ph with
        | "B" | "E" ->
          let b, e =
            match Hashtbl.find_opt spans tid with
            | Some p -> p
            | None ->
              let p = (ref 0, ref 0) in
              Hashtbl.add spans tid p;
              p
          in
          if ph = "B" then incr b else incr e;
          (* Never more closes than opens at any point in the stream. *)
          check "E never precedes its B" true (!e <= !b)
        | "X" ->
          check "X has dur" true (int_field "dur" ev <> None)
        | "i" -> ()
        | p -> Alcotest.fail ("unexpected phase " ^ p)
      end)
    evs;
  check "at least one span track" true (Hashtbl.length spans > 0);
  Hashtbl.iter
    (fun tid (b, e) ->
      check (Printf.sprintf "track %d: B/E matched" tid) true (!b = !e))
    spans

let test_chrome_json_parses () =
  (* The serialised document must be self-consistent: every brace and
     bracket balanced, and it must start as an object with traceEvents. *)
  let c = Chrome.create () in
  let obs = Chrome.sink c in
  let (_ : Driver.result) =
    run_with ~engine:`Interp ~obs Pipeline.Baseline (small_matrix 65)
  in
  let s = Chrome.to_string c in
  let depth = ref 0 and in_str = ref false and escaped = ref false in
  String.iter
    (fun ch ->
      if !escaped then escaped := false
      else if !in_str then begin
        if ch = '\\' then escaped := true else if ch = '"' then in_str := false
      end
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' -> decr depth
        | _ -> ())
    s;
  check "balanced JSON" true (!depth = 0 && not !in_str);
  check "document is an object" true (String.length s > 0 && s.[0] = '{')

(* --- Driver.run = wrappers ------------------------------------------- *)

let same_result name (a : Driver.result) (b : Driver.result) =
  check (name ^ ": report") true (a.Driver.report = b.Driver.report);
  check (name ^ ": counters") true (a.Driver.counters = b.Driver.counters);
  check (name ^ ": nnz") true (a.Driver.nnz = b.Driver.nnz);
  check (name ^ ": out_f") true (a.Driver.out_f = b.Driver.out_f);
  check (name ^ ": out_b") true (a.Driver.out_b = b.Driver.out_b)

let test_run_equals_wrappers () =
  let coo = small_matrix 66 in
  let enc = Encoding.csr () in
  let cfg = Driver.Cfg.make ~machine ~variant:asap_v () in
  same_result "spmv"
    (Driver.run cfg (Driver.Spmv enc) coo)
    (Driver.spmv machine asap_v enc coo);
  same_result "spmm"
    (Driver.run { cfg with Driver.Cfg.n = Some 4 } (Driver.Spmm enc) coo)
    (Driver.spmm ~n:4 machine asap_v enc coo);
  same_result "binary spmv"
    (Driver.run { cfg with Driver.Cfg.binary = true } (Driver.Spmv enc) coo)
    (Driver.spmv ~binary:true machine asap_v enc coo);
  let t3 = Generate.tensor3 ~seed:67 ~dims:[| 15; 20; 25 |] ~nnz:300 () in
  same_result "ttv"
    (Driver.run cfg (Driver.Ttv None) t3)
    (Driver.ttv machine asap_v t3)

(* --- Registry snapshot/diff ------------------------------------------ *)

let test_registry_snapshot_diff () =
  let r = Registry.create () in
  Registry.set r "a.one" 3;
  Registry.set r "a.two" 5;
  let before = Registry.snapshot r in
  Registry.add r "a.one" 4;
  Registry.set r "b.new" 2;
  (* The snapshot is immutable: mutating [r] must not leak into it. *)
  check_int "snapshot frozen" 3 (Registry.find before "a.one");
  check "snapshot has no b.new" true (Registry.get before "b.new" = None);
  Alcotest.(check (list (pair string int)))
    "diff is the change set"
    [ ("a.one", 4); ("b.new", 2) ]
    (Registry.diff ~before ~after:r);
  (* Unchanged counters drop; a self-diff is empty. *)
  Alcotest.(check (list (pair string int)))
    "self diff empty" []
    (Registry.diff ~before:r ~after:r);
  (* A counter that disappears (or was only on the before side) reads as
     a negative change. *)
  Alcotest.(check (list (pair string int)))
    "reverse diff negates"
    [ ("a.one", -4); ("b.new", -2) ]
    (Registry.diff ~before:r ~after:before)

(* --- Jsonu parsing ---------------------------------------------------- *)

let test_jsonu_roundtrip () =
  let doc =
    Jsonu.Obj
      [ ("s", Jsonu.Str "a\"b\\c\n\t");
        ("i", Jsonu.Int (-42));
        ("f", Jsonu.Float 1.5);
        ("b", Jsonu.Bool true);
        ("nul", Jsonu.Null);
        ("l", Jsonu.List [ Jsonu.Int 1; Jsonu.Str "x"; Jsonu.Bool false ]);
        ("o", Jsonu.Obj [ ("k", Jsonu.Int 7) ]) ]
  in
  (match Jsonu.of_string (Jsonu.to_string doc) with
   | Ok parsed -> check "emit/parse roundtrip" true (parsed = doc)
   | Error e -> Alcotest.fail e);
  (* Numbers: int unless '.' or exponent; unicode escapes decode. *)
  (match Jsonu.of_string {| {"a": 2e3, "u": "\u00e9\ud83d\ude00"} |} with
   | Ok j ->
     check "2e3 is float" true
       (Jsonu.member "a" j |> Option.get |> Jsonu.to_float_opt = Some 2000.);
     check "int accessor rejects non-integral" true
       (Jsonu.of_string "1.5" |> Result.get_ok |> Jsonu.to_int_opt = None);
     check "utf8 decode" true
       (Jsonu.member "u" j |> Option.get |> Jsonu.to_str_opt
        = Some "\xc3\xa9\xf0\x9f\x98\x80")
   | Error e -> Alcotest.fail e);
  (* Malformed inputs are errors, not exceptions. *)
  List.iter
    (fun s ->
      check (Printf.sprintf "reject %S" s) true
        (Result.is_error (Jsonu.of_string s)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated";
      "{\"a\" 1}" ]

let test_cfg_defaults () =
  let cfg = Driver.Cfg.make ~machine ~variant:Pipeline.Baseline () in
  check "default engine" true (cfg.Driver.Cfg.engine = Exec.default_engine);
  check_int "default threads" 1 cfg.Driver.Cfg.threads;
  check "default numeric" true (not cfg.Driver.Cfg.binary);
  check "default n unset" true (cfg.Driver.Cfg.n = None);
  check "default packing fresh" true (cfg.Driver.Cfg.st = None);
  check "default sink disabled" true
    (not cfg.Driver.Cfg.obs.Sink.enabled)

let suite =
  [ Alcotest.test_case "registry differential (engines x tracing)" `Quick
      test_registry_differential;
    Alcotest.test_case "counters = canonical export" `Quick
      test_counters_match_report;
    Alcotest.test_case "counter-name catalogue" `Quick test_catalogue;
    Alcotest.test_case "chrome trace golden" `Quick test_chrome_golden;
    Alcotest.test_case "chrome JSON well-formed" `Quick
      test_chrome_json_parses;
    Alcotest.test_case "Driver.run = wrappers" `Quick
      test_run_equals_wrappers;
    Alcotest.test_case "Cfg defaults" `Quick test_cfg_defaults;
    Alcotest.test_case "registry snapshot/diff" `Quick
      test_registry_snapshot_diff;
    Alcotest.test_case "jsonu parse roundtrip" `Quick test_jsonu_roundtrip ]
