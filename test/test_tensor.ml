(* Tests for the sparse tensor substrate: COO, encodings, storage,
   coordinate trees, Matrix Market I/O, dense tensors. *)

open Asap_tensor

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The Fig. 2 matrix: non-zeros (0,0)=1, (0,2)=2, (2,2)=3; row 1 empty. *)
let fig2 () =
  Coo.of_triples ~rows:3 ~cols:3 [ (0, 0, 1.); (0, 2, 2.); (2, 2, 3.) ]

let all_encodings () =
  [ Encoding.coo (); Encoding.csr (); Encoding.csc (); Encoding.dcsr ();
    Encoding.csf 2 ]

(* --- Coo ----------------------------------------------------------- *)

let test_coo_create_bounds () =
  (try
     let (_ : Coo.t) = Coo.of_triples ~rows:2 ~cols:2 [ (2, 0, 1.) ] in
     Alcotest.fail "accepted out-of-bound coordinate"
   with Invalid_argument _ -> ())

let test_coo_sorted_dedup () =
  let c =
    Coo.of_triples ~rows:3 ~cols:3
      [ (2, 2, 1.); (0, 0, 1.); (2, 2, 2.); (0, 2, 5.) ]
  in
  let s = Coo.sorted_dedup c in
  check_int "dedup sums duplicates" 3 (Coo.nnz s);
  let d = Coo.to_dense s in
  check "sum" true (d.((2 * 3) + 2) = 3.);
  (* Sorted row-major. *)
  check "sorted" true
    (s.Coo.coords.(0) = [| 0; 0 |] && s.Coo.coords.(2) = [| 2; 2 |])

let test_coo_sorted_dedup_perm () =
  let c = fig2 () in
  let s = Coo.sorted_dedup ~perm:[| 1; 0 |] c in
  (* Column-major order: (0,0), (0,2) ... by column first: (0,0), (2,2)?
     columns: 0 -> (0,0); 2 -> (0,2), (2,2). *)
  check "first is col 0" true (s.Coo.coords.(0) = [| 0; 0 |]);
  check "second is (0,2)" true (s.Coo.coords.(1) = [| 0; 2 |]);
  check "third is (2,2)" true (s.Coo.coords.(2) = [| 2; 2 |])

let test_coo_stats () =
  let st = Coo.matrix_stats (fig2 ()) in
  check_int "rows" 3 st.Coo.s_rows;
  check_int "nnz" 3 st.Coo.s_nnz;
  check_int "max row" 2 st.Coo.s_row_max;
  check_int "min row" 0 st.Coo.s_row_min;
  check "footprint" true (st.Coo.s_footprint_bytes > 0)

(* --- Encoding ------------------------------------------------------ *)

let test_encoding_validate () =
  (try
     let (_ : Encoding.t) =
       Encoding.make "bad" [| Encoding.Singleton |] [| 0 |]
     in
     Alcotest.fail "accepted singleton top level"
   with Invalid_argument _ -> ());
  (try
     let (_ : Encoding.t) =
       Encoding.make "bad"
         [| Encoding.Dense; Encoding.Dense |]
         [| 0; 0 |]
     in
     Alcotest.fail "accepted duplicate dim mapping"
   with Invalid_argument _ -> ())

let test_encoding_props () =
  check "csr pos" true (Encoding.has_pos (Encoding.Compressed { unique = true }));
  check "dense no pos" false (Encoding.has_pos Encoding.Dense);
  check "singleton crd" true (Encoding.has_crd Encoding.Singleton);
  let e = Encoding.csc () in
  check_int "csc level0 stores dim 1" 1 e.Encoding.dim_to_lvl.(0);
  check "fig1b text" true
    (Astring_contains.contains (Encoding.to_string (Encoding.csr ()))
       "compressed")

(* --- Storage ------------------------------------------------------- *)

let test_storage_csr_fig2 () =
  let st = Storage.pack (Encoding.csr ()) (fig2 ()) in
  (match Storage.pos_buf st 1 with
   | Some pos -> Alcotest.(check (array int)) "Bj_pos" [| 0; 2; 2; 3 |] pos
   | None -> Alcotest.fail "csr level 1 must have pos");
  (match Storage.crd_buf st 1 with
   | Some crd -> Alcotest.(check (array int)) "Bj_crd" [| 0; 2; 2 |] crd
   | None -> Alcotest.fail "csr level 1 must have crd");
  check "no level-0 buffers" true
    (Storage.pos_buf st 0 = None && Storage.crd_buf st 0 = None)

let test_storage_coo_fig2 () =
  let st = Storage.pack (Encoding.coo ()) (fig2 ()) in
  (match Storage.pos_buf st 0 with
   | Some pos -> Alcotest.(check (array int)) "Bi_pos" [| 0; 3 |] pos
   | None -> Alcotest.fail "coo level 0 must have pos");
  (match Storage.crd_buf st 0 with
   | Some crd -> Alcotest.(check (array int)) "Bi_crd" [| 0; 0; 2 |] crd
   | None -> Alcotest.fail "coo level 0 must have crd");
  (match Storage.crd_buf st 1 with
   | Some crd -> Alcotest.(check (array int)) "Bj_crd" [| 0; 2; 2 |] crd
   | None -> Alcotest.fail "coo level 1 must have crd")

let test_storage_dcsr_fig2 () =
  let st = Storage.pack (Encoding.dcsr ()) (fig2 ()) in
  (match Storage.pos_buf st 0, Storage.crd_buf st 0 with
   | Some pos, Some crd ->
     Alcotest.(check (array int)) "Bi_pos" [| 0; 2 |] pos;
     Alcotest.(check (array int)) "Bi_crd" [| 0; 2 |] crd
   | _ -> Alcotest.fail "dcsr level 0 buffers");
  (match Storage.pos_buf st 1 with
   | Some pos -> Alcotest.(check (array int)) "Bj_pos" [| 0; 2; 3 |] pos
   | None -> Alcotest.fail "dcsr level 1 pos")

let test_storage_csc_fig2 () =
  let st = Storage.pack (Encoding.csc ()) (fig2 ()) in
  (match Storage.pos_buf st 1, Storage.crd_buf st 1 with
   | Some pos, Some crd ->
     (* Columns 0,1,2: col 0 has row 0; col 1 empty; col 2 has rows 0,2. *)
     Alcotest.(check (array int)) "Bi_pos" [| 0; 1; 1; 3 |] pos;
     Alcotest.(check (array int)) "Bi_crd" [| 0; 0; 2 |] crd
   | _ -> Alcotest.fail "csc level 1 buffers")

let test_storage_roundtrip_all () =
  let c = fig2 () in
  let reference = Coo.to_dense c in
  List.iter
    (fun enc ->
      let st = Storage.pack enc c in
      let back = Coo.to_dense (Storage.to_coo st) in
      Alcotest.(check (array (float 1e-9)))
        ("roundtrip " ^ enc.Encoding.name) reference back)
    (all_encodings ())

let test_storage_convert () =
  let st = Storage.pack (Encoding.csr ()) (fig2 ()) in
  let st' = Storage.convert (Encoding.dcsr ()) st in
  check "converted format name" true (st'.Storage.enc.Encoding.name = "DCSR");
  Alcotest.(check (array (float 1e-9)))
    "convert preserves" (Coo.to_dense (fig2 ()))
    (Coo.to_dense (Storage.to_coo st'))

let test_storage_empty () =
  let c = Coo.create ~dims:[| 4; 4 |] ~coords:[||] ~vals:[||] in
  List.iter
    (fun enc ->
      let st = Storage.pack enc c in
      check_int ("empty nnz " ^ enc.Encoding.name) 0 (Coo.nnz (Storage.to_coo st)))
    (all_encodings ())

let test_storage_footprint () =
  let st32 = Storage.pack (Encoding.csr ()) (fig2 ()) in
  let st64 = Storage.pack (Encoding.csr ~width:Encoding.W64 ()) (fig2 ()) in
  check "64-bit indices cost more" true
    (Storage.footprint_bytes st64 > Storage.footprint_bytes st32)

let test_storage_csf_rank3 () =
  (* A 2x2x3 tensor with nnz at (0,0,1), (0,1,2), (1,1,0). *)
  let c =
    Coo.create ~dims:[| 2; 2; 3 |]
      ~coords:[| [| 0; 0; 1 |]; [| 0; 1; 2 |]; [| 1; 1; 0 |] |]
      ~vals:[| 1.; 2.; 3. |]
  in
  let st = Storage.pack (Encoding.csf 3) c in
  (match Storage.pos_buf st 0, Storage.crd_buf st 0 with
   | Some pos, Some crd ->
     Alcotest.(check (array int)) "Bi_pos" [| 0; 2 |] pos;
     Alcotest.(check (array int)) "Bi_crd" [| 0; 1 |] crd
   | _ -> Alcotest.fail "csf level 0");
  (match Storage.pos_buf st 1, Storage.crd_buf st 1 with
   | Some pos, Some crd ->
     Alcotest.(check (array int)) "Bj_pos" [| 0; 2; 3 |] pos;
     Alcotest.(check (array int)) "Bj_crd" [| 0; 1; 1 |] crd
   | _ -> Alcotest.fail "csf level 1");
  (match Storage.pos_buf st 2, Storage.crd_buf st 2 with
   | Some pos, Some crd ->
     Alcotest.(check (array int)) "Bk_pos" [| 0; 1; 2; 3 |] pos;
     Alcotest.(check (array int)) "Bk_crd" [| 1; 2; 0 |] crd
   | _ -> Alcotest.fail "csf level 2");
  Alcotest.(check (array (float 1e-12))) "vals" [| 1.; 2.; 3. |] st.Storage.vals;
  (* Roundtrip through iter. *)
  Alcotest.(check (array (float 1e-12)))
    "rank-3 roundtrip" (Coo.to_dense c)
    (Coo.to_dense (Storage.to_coo st))

let test_storage_single_row_col () =
  (* Degenerate shapes: 1xN and Nx1. *)
  let row = Coo.of_triples ~rows:1 ~cols:6 [ (0, 1, 1.); (0, 5, 2.) ] in
  let col = Coo.of_triples ~rows:6 ~cols:1 [ (2, 0, 1.); (4, 0, 2.) ] in
  List.iter
    (fun enc ->
      List.iter
        (fun c ->
          Alcotest.(check (array (float 1e-12)))
            ("degenerate " ^ enc.Encoding.name)
            (Coo.to_dense c)
            (Coo.to_dense (Storage.to_coo (Storage.pack enc c))))
        [ row; col ])
    (all_encodings ())

let test_storage_full_matrix () =
  (* A fully dense 3x3 stored sparsely. *)
  let entries = ref [] in
  for i = 0 to 2 do
    for j = 0 to 2 do
      entries := (i, j, float_of_int ((i * 3) + j + 1)) :: !entries
    done
  done;
  let c = Coo.of_triples ~rows:3 ~cols:3 !entries in
  List.iter
    (fun enc ->
      Alcotest.(check (array (float 1e-12)))
        ("full " ^ enc.Encoding.name) (Coo.to_dense c)
        (Coo.to_dense (Storage.to_coo (Storage.pack enc c))))
    (all_encodings ())

(* qcheck: pack/unpack is lossless for every encoding. *)
let qcheck_roundtrip =
  let gen =
    QCheck2.Gen.(
      let* rows = int_range 1 12 in
      let* cols = int_range 1 12 in
      let* n = int_range 0 30 in
      let* entries =
        list_size (pure n)
          (triple (int_range 0 (rows - 1)) (int_range 0 (cols - 1))
             (map (fun x -> float_of_int x +. 1.) (int_range 1 50)))
      in
      pure (rows, cols, entries))
  in
  QCheck2.Test.make ~count:200 ~name:"storage roundtrip (all encodings)" gen
    (fun (rows, cols, entries) ->
      let c = Coo.of_triples ~rows ~cols entries in
      let reference = Coo.to_dense (Coo.sorted_dedup c) in
      List.for_all
        (fun enc ->
          let st = Storage.pack enc c in
          Coo.to_dense (Storage.to_coo st) = reference)
        (all_encodings ()))

(* --- Coord_tree ---------------------------------------------------- *)

let test_coord_tree_shapes () =
  let c = fig2 () in
  let tree_of enc = Coord_tree.of_storage (Storage.pack enc c) in
  let coo = tree_of (Encoding.coo ()) in
  let csr = tree_of (Encoding.csr ()) in
  let dcsr = tree_of (Encoding.dcsr ()) in
  (* Fig. 2: COO top level has 3 nodes (row 0 twice), CSR has 3 (all rows),
     DCSR has 2 (non-empty rows only). *)
  check_int "coo top" 3 (List.length coo.Coord_tree.children);
  check_int "csr top" 3 (List.length csr.Coord_tree.children);
  check_int "dcsr top" 2 (List.length dcsr.Coord_tree.children);
  check_int "coo leaves" 3 (Coord_tree.leaf_count coo);
  check_int "csr leaves" 3 (Coord_tree.leaf_count csr);
  check_int "depth" 2 (Coord_tree.depth csr);
  check "drawing mentions values" true
    (Astring_contains.contains (Coord_tree.to_string csr) "= 3")

(* --- Matrix market ------------------------------------------------- *)

let test_mm_roundtrip () =
  let c = fig2 () in
  let s = Matrix_market.to_string c in
  let c' = Matrix_market.of_string s in
  Alcotest.(check (array (float 1e-9)))
    "mm roundtrip" (Coo.to_dense c) (Coo.to_dense c')

let test_mm_pattern_symmetric () =
  let s =
    "%%MatrixMarket matrix coordinate pattern symmetric\n\
     3 3 2\n\
     2 1\n\
     3 3\n"
  in
  let c = Matrix_market.of_string s in
  check_int "symmetric expansion" 3 (Coo.nnz c);
  let d = Coo.to_dense c in
  check "mirrored" true (d.(1 * 3) = 1. && d.(0 * 3 + 1) = 1. && d.(8) = 1.)

let test_mm_integer_and_comments () =
  let s =
    "%%MatrixMarket matrix coordinate integer general\n\
     % a comment line\n\
     % another\n\
     2 2 2\n\
     1 1 7\n\
     2 2 -3\n"
  in
  let c = Matrix_market.of_string s in
  let d = Coo.to_dense c in
  check "integer values" true (d.(0) = 7. && d.(3) = -3.)

let test_mm_skew_symmetric () =
  let s =
    "%%MatrixMarket matrix coordinate real skew-symmetric\n\
     3 3 1\n\
     3 1 2.5\n"
  in
  let c = Matrix_market.of_string s in
  let d = Coo.to_dense c in
  check "entry" true (d.((2 * 3) + 0) = 2.5);
  check "negated mirror" true (d.((0 * 3) + 2) = -2.5)

let test_mm_errors () =
  List.iter
    (fun s ->
      try
        let (_ : Coo.t) = Matrix_market.of_string s in
        Alcotest.fail "accepted malformed file"
      with Matrix_market.Parse_error _ -> ())
    [ ""; "%%MatrixMarket matrix array real general\n1 1\n1.0\n";
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n";
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n" ]

let test_mm_crlf_and_whitespace () =
  (* Files written on Windows terminate lines with \r\n; tolerate that,
     plus leading/trailing blanks, blank lines and comments after the
     header. *)
  let crlf =
    "%%MatrixMarket matrix coordinate real general\r\n\
     3 3 2\r\n\
     1 1 1.5\r\n\
     3 3 2.5\r\n"
  in
  let c = Matrix_market.of_string crlf in
  check_int "crlf nnz" 2 (Coo.nnz c);
  check "crlf values" true
    (let d = Coo.to_dense c in
     d.(0) = 1.5 && d.(8) = 2.5);
  let messy =
    String.concat "\n"
      [ "%%MatrixMarket matrix coordinate real general";
        "% a comment before the size line"; ""; "\t 3 3 2  ";
        "% a comment between entries"; "  1 1 1.5"; ""; "3 3 2.5  "; "" ]
  in
  let c' = Matrix_market.of_string messy in
  Alcotest.(check (array (float 1e-12)))
    "messy = crlf" (Coo.to_dense c) (Coo.to_dense c')

let test_mm_duplicate_rejected () =
  List.iter
    (fun (label, s) ->
      try
        let (_ : Coo.t) = Matrix_market.of_string s in
        Alcotest.fail ("accepted " ^ label)
      with Matrix_market.Parse_error msg ->
        check (label ^ " names the entry") true
          (Astring_contains.contains msg "duplicate"))
    [ ("plain duplicate",
       "%%MatrixMarket matrix coordinate real general\n\
        3 3 2\n2 2 1.0\n2 2 5.0\n");
      ("symmetric mirror duplicate",
       "%%MatrixMarket matrix coordinate real symmetric\n\
        3 3 2\n2 1 1.0\n1 2 5.0\n") ]

(* --- Dense --------------------------------------------------------- *)

let test_dense () =
  let d = Dense.init [| 2; 3 |] (fun c -> float_of_int ((c.(0) * 3) + c.(1))) in
  check "get2" true (Dense.get2 d 1 2 = 5.);
  Dense.set2 d 1 2 9.;
  check "set2" true (Dense.get2 d 1 2 = 9.);
  let e = Dense.copy d in
  Dense.fill e 0.;
  check "copy independent" true (Dense.get2 d 1 2 = 9.);
  check "max_abs_diff" true (Dense.max_abs_diff d e = 9.)

let suite =
  [ Alcotest.test_case "coo bounds" `Quick test_coo_create_bounds;
    Alcotest.test_case "coo sorted_dedup" `Quick test_coo_sorted_dedup;
    Alcotest.test_case "coo dedup perm" `Quick test_coo_sorted_dedup_perm;
    Alcotest.test_case "coo stats" `Quick test_coo_stats;
    Alcotest.test_case "encoding validate" `Quick test_encoding_validate;
    Alcotest.test_case "encoding props" `Quick test_encoding_props;
    Alcotest.test_case "storage csr fig2" `Quick test_storage_csr_fig2;
    Alcotest.test_case "storage coo fig2" `Quick test_storage_coo_fig2;
    Alcotest.test_case "storage dcsr fig2" `Quick test_storage_dcsr_fig2;
    Alcotest.test_case "storage csc fig2" `Quick test_storage_csc_fig2;
    Alcotest.test_case "storage roundtrip" `Quick test_storage_roundtrip_all;
    Alcotest.test_case "storage convert" `Quick test_storage_convert;
    Alcotest.test_case "storage empty" `Quick test_storage_empty;
    Alcotest.test_case "storage footprint" `Quick test_storage_footprint;
    Alcotest.test_case "storage csf rank3" `Quick test_storage_csf_rank3;
    Alcotest.test_case "storage degenerate shapes" `Quick
      test_storage_single_row_col;
    Alcotest.test_case "storage full matrix" `Quick test_storage_full_matrix;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    Alcotest.test_case "coord tree fig2" `Quick test_coord_tree_shapes;
    Alcotest.test_case "matrix market roundtrip" `Quick test_mm_roundtrip;
    Alcotest.test_case "matrix market pattern" `Quick test_mm_pattern_symmetric;
    Alcotest.test_case "matrix market integer" `Quick
      test_mm_integer_and_comments;
    Alcotest.test_case "matrix market skew" `Quick test_mm_skew_symmetric;
    Alcotest.test_case "matrix market errors" `Quick test_mm_errors;
    Alcotest.test_case "matrix market crlf/whitespace" `Quick
      test_mm_crlf_and_whitespace;
    Alcotest.test_case "matrix market duplicates" `Quick
      test_mm_duplicate_rejected;
    Alcotest.test_case "dense tensor" `Quick test_dense ]
