(* Trace-based validation of prefetch coverage: mechanically checks the
   paper's §3.2.2 claim — ASaP's whole-buffer bound covers the dense
   operand's lines across segment boundaries, while the segment-local
   bound leaves the head of every short segment uncovered — independent of
   the timing model. *)

module Coo = Asap_tensor.Coo
module Storage = Asap_tensor.Storage
module Encoding = Asap_tensor.Encoding
module Kernel = Asap_lang.Kernel
module Runtime = Asap_sim.Runtime
module Interp = Asap_sim.Interp
module Trace = Asap_sim.Trace
module Pipeline = Asap_core.Pipeline
module Bindings = Asap_core.Bindings
module Asap = Asap_prefetch.Asap
module Generate = Asap_workloads.Generate
open Asap_ir

let check = Alcotest.(check bool)

(* Run CSR SpMV under [variant] and return the coverage of c's lines by
   software prefetches, plus the raw trace. *)
let spmv_coverage coo variant =
  let enc = Encoding.csr () in
  let rows = coo.Coo.dims.(0) and cols = coo.Coo.dims.(1) in
  let compiled = Pipeline.compile (Kernel.spmv ~enc ()) variant in
  let st = Storage.pack enc coo in
  let cvec = Array.init cols (fun j -> float_of_int j) in
  let out = Array.make rows 0. in
  let dense = [ ("c", Runtime.RF cvec); ("a", Runtime.RF out) ] in
  let bufs = Bindings.storage_bufs compiled.Pipeline.cc st ~binary:false ~dense in
  let scalars =
    Bindings.scalar_args compiled.Pipeline.cc ~extents:[| rows; cols |]
  in
  let bound = Runtime.layout compiled.Pipeline.fn bufs in
  let c_bound =
    let arr = Array.to_list bound in
    List.find (fun (b : Runtime.bound) -> b.Runtime.buf.Ir.bname = "c") arr
  in
  let t = Trace.create () in
  let mem = Trace.wrap t Trace.free_mem in
  let (_ : Interp.result) =
    Interp.run compiled.Pipeline.fn ~bufs:bound ~scalars ~mem
  in
  let lo = c_bound.Runtime.base in
  let hi = lo + (Runtime.length_of c_bound.Runtime.data * 8) in
  Trace.coverage t ~range:(lo, hi) ~line_bytes:64

(* Short rows (degree ~3) against distance 8. *)
let short_row_matrix () =
  Generate.power_law ~seed:81 ~rows:3_000 ~cols:3_000 ~avg_deg:3 ~alpha:2.4 ()

let test_semantic_bound_covers () =
  let coo = short_row_matrix () in
  let covered, total =
    spmv_coverage coo
      (Pipeline.Asap { Asap.default with Asap.distance = 8 })
  in
  (* The whole-buffer bound misses only the first `distance` iterations'
     worth of lines; everything after is prefetched ahead across segment
     boundaries. *)
  check
    (Printf.sprintf "semantic covers most lines (%d/%d)" covered total)
    true
    (float_of_int covered /. float_of_int total > 0.9)

let test_segment_bound_undercovers () =
  let coo = short_row_matrix () in
  let sem, total =
    spmv_coverage coo
      (Pipeline.Asap { Asap.default with Asap.distance = 8 })
  in
  let seg, total' =
    spmv_coverage coo
      (Pipeline.Asap
         { Asap.default with Asap.distance = 8;
           bound_mode = Asap.Segment_local })
  in
  check "same demand footprint" true (total = total');
  (* With rows far shorter than the distance, the segment-local clamp can
     only ever prefetch each segment's last element — far less coverage. *)
  check
    (Printf.sprintf "segment-local covers less (%d < %d)" seg sem)
    true
    (seg < sem);
  check "segment-local misses a large fraction" true
    (float_of_int seg /. float_of_int total' < 0.8)

let test_baseline_no_prefetches () =
  let coo = short_row_matrix () in
  let covered, total = spmv_coverage coo Pipeline.Baseline in
  check "baseline never prefetches" true (covered = 0 && total > 0)

let test_trace_event_order () =
  (* Events appear in program order: for ASaP's site the step-1 crd
     prefetch precedes the bounded load which precedes the target
     prefetch, every iteration. *)
  let coo = Coo.of_triples ~rows:2 ~cols:2 [ (0, 0, 1.); (1, 1, 2.) ] in
  let enc = Encoding.csr () in
  let compiled =
    Pipeline.compile (Kernel.spmv ~enc ())
      (Pipeline.Asap { Asap.default with Asap.distance = 2 })
  in
  let st = Storage.pack enc coo in
  let dense =
    [ ("c", Runtime.RF [| 1.; 2. |]); ("a", Runtime.RF (Array.make 2 0.)) ]
  in
  let bufs = Bindings.storage_bufs compiled.Pipeline.cc st ~binary:false ~dense in
  let bound = Runtime.layout compiled.Pipeline.fn bufs in
  let t = Trace.create () in
  let (_ : Interp.result) =
    Interp.run compiled.Pipeline.fn ~bufs:bound
      ~scalars:
        (Bindings.scalar_args compiled.Pipeline.cc ~extents:[| 2; 2 |])
      ~mem:(Trace.wrap t Trace.free_mem)
  in
  let prefetches =
    List.filter
      (function Trace.Prefetch _ -> true | _ -> false)
      (Trace.events t)
  in
  (* Two sites executed (one nnz per row): 2 prefetches each. *)
  check "four prefetches traced" true (List.length prefetches = 4)

let test_late_cutoff () =
  (* coverage ~late:n only credits prefetches issued at least n time
     units ahead of the first demand touch: monotone non-increasing in n,
     unchanged at 0, and empty once the cutoff exceeds every lead. *)
  let coo = short_row_matrix () in
  let variant = Pipeline.Asap { Asap.default with Asap.distance = 8 } in
  let enc = Encoding.csr () in
  let rows = coo.Coo.dims.(0) and cols = coo.Coo.dims.(1) in
  let compiled = Pipeline.compile (Kernel.spmv ~enc ()) variant in
  let st = Storage.pack enc coo in
  let dense =
    [ ("c", Runtime.RF (Array.init cols float_of_int));
      ("a", Runtime.RF (Array.make rows 0.)) ]
  in
  let bufs = Bindings.storage_bufs compiled.Pipeline.cc st ~binary:false ~dense in
  let bound = Runtime.layout compiled.Pipeline.fn bufs in
  let c_bound =
    List.find (fun (b : Runtime.bound) -> b.Runtime.buf.Ir.bname = "c")
      (Array.to_list bound)
  in
  let t = Trace.create () in
  let (_ : Interp.result) =
    Interp.run compiled.Pipeline.fn ~bufs:bound
      ~scalars:
        (Bindings.scalar_args compiled.Pipeline.cc ~extents:[| rows; cols |])
      ~mem:(Trace.wrap t Trace.free_mem)
  in
  let lo = c_bound.Runtime.base in
  let hi = lo + (Runtime.length_of c_bound.Runtime.data * 8) in
  let range = (lo, hi) in
  let cov late = fst (Trace.coverage ~late t ~range ~line_bytes:64) in
  let c0 = fst (Trace.coverage t ~range ~line_bytes:64) in
  check "late:0 = default" true (cov 0 = c0);
  check "covered at all" true (c0 > 0);
  check "cutoff monotone" true (cov 10 <= c0 && cov 100 <= cov 10);
  check "huge cutoff empties coverage" true (cov max_int = 0)

let test_trace_sink () =
  (* Trace as a first-class sink on the timing hierarchy: the same
     program-order event list, fed by Exec instead of a wrapped port. *)
  let coo = Coo.of_triples ~rows:2 ~cols:2 [ (0, 0, 1.); (1, 1, 2.) ] in
  let enc = Encoding.csr () in
  let machine = Asap_sim.Machine.gracemont_scaled () in
  let t = Trace.create () in
  let cfg =
    Asap_core.Driver.Cfg.make ~machine
      ~variant:(Pipeline.Asap { Asap.default with Asap.distance = 2 })
      ~obs:(Trace.sink t) ()
  in
  let r = Asap_core.Driver.run cfg (Asap_core.Driver.Spmv enc) coo in
  let events = Trace.events t in
  let count p = List.length (List.filter p events) in
  let module Exec = Asap_sim.Exec in
  check "sink saw every demand load" true
    (count (function Trace.Load _ -> true | _ -> false)
     = Exec.Report.demand_loads r.Asap_core.Driver.report);
  check "sink saw every store" true
    (count (function Trace.Store _ -> true | _ -> false)
     = Exec.Report.demand_stores r.Asap_core.Driver.report);
  check "sink saw every sw prefetch" true
    (count (function Trace.Prefetch _ -> true | _ -> false)
     = Exec.Report.prefetch_instrs r.Asap_core.Driver.report)

let suite =
  [ Alcotest.test_case "semantic bound coverage" `Quick
      test_semantic_bound_covers;
    Alcotest.test_case "segment bound undercovers" `Quick
      test_segment_bound_undercovers;
    Alcotest.test_case "baseline clean" `Quick test_baseline_no_prefetches;
    Alcotest.test_case "trace order" `Quick test_trace_event_order;
    Alcotest.test_case "late cutoff" `Quick test_late_cutoff;
    Alcotest.test_case "trace as hierarchy sink" `Quick test_trace_sink ]
