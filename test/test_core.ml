(* End-to-end tests: driver correctness across kernels, formats and
   prefetch variants; metrics; workload generators. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Hierarchy = Asap_sim.Hierarchy
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Reference = Asap_core.Reference
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Rng = Asap_workloads.Rng
module Generate = Asap_workloads.Generate
module Suite = Asap_workloads.Suite
module Summary = Asap_metrics.Summary
module Regress = Asap_metrics.Regress
module Roofline = Asap_metrics.Roofline

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let machine = Machine.gracemont_scaled ()

let small_matrix seed =
  Generate.power_law ~seed ~rows:300 ~cols:300 ~avg_deg:6 ~alpha:2.0 ()

let variants =
  [ ("baseline", Pipeline.Baseline);
    ("asap", Pipeline.Asap { Asap.default with Asap.distance = 8 });
    ("aj", Pipeline.Ainsworth_jones { Aj.default with Aj.distance = 8 }) ]

let encodings () =
  [ Encoding.coo (); Encoding.csr (); Encoding.csc (); Encoding.dcsr () ]

let test_spmv_all_variants_all_formats () =
  let coo = small_matrix 1 in
  List.iter
    (fun enc ->
      List.iter
        (fun (vn, v) ->
          let r = Driver.spmv machine v enc coo in
          let err = Driver.check_spmv coo r in
          check
            (Printf.sprintf "spmv %s/%s" enc.Encoding.name vn)
            true (err < 1e-9))
        variants)
    (encodings ())

let test_spmv_wide_indices () =
  (* 64-bit index buffers (paper §4.2) change addressing, not semantics. *)
  let coo = small_matrix 12 in
  let enc = Encoding.csr ~width:Encoding.W64 () in
  let r = Driver.spmv machine (Pipeline.Asap Asap.default) enc coo in
  check "w64 correct" true (Driver.check_spmv coo r < 1e-9);
  (* Wider indices double the crd traffic footprint. *)
  let st32 =
    Asap_tensor.Storage.pack (Encoding.csr ()) coo
  in
  let st64 = Asap_tensor.Storage.pack enc coo in
  check "w64 footprint larger" true
    (Asap_tensor.Storage.footprint_bytes st64
     > Asap_tensor.Storage.footprint_bytes st32)

let test_spmm_all_variants () =
  let coo = small_matrix 2 in
  List.iter
    (fun (vn, v) ->
      let r = Driver.spmm machine v (Encoding.csr ()) ~n:4 coo in
      check ("spmm " ^ vn) true (Driver.check_spmm coo ~n:4 r < 1e-9))
    variants

let test_spmv_binary () =
  let coo = small_matrix 3 in
  List.iter
    (fun (vn, v) ->
      let r = Driver.spmv ~binary:true machine v (Encoding.csr ()) coo in
      check ("binary spmv " ^ vn) true (Driver.check_spmv coo r = 0.))
    variants

let test_spmm_binary () =
  let coo = small_matrix 4 in
  let r = Driver.spmm ~binary:true machine Pipeline.Baseline (Encoding.csr ())
      ~n:16 coo
  in
  check "binary spmm" true (Driver.check_spmm coo ~n:16 r = 0.)

let test_spmv_parallel_matches () =
  let coo = small_matrix 5 in
  let m4 = Machine.gracemont_scaled ~cores:4 () in
  let r1 = Driver.spmv machine Pipeline.Baseline (Encoding.csr ()) coo in
  let r4 =
    Driver.spmv ~threads:4 m4 Pipeline.Baseline (Encoding.csr ()) coo
  in
  check "parallel correct" true (Driver.check_spmv coo r4 < 1e-9);
  check "parallel cycles less" true
    (r4.Driver.report.Exec.rp_cycles <= r1.Driver.report.Exec.rp_cycles)

let test_parallel_rejects_compressed_outer () =
  let coo = small_matrix 6 in
  let m4 = Machine.gracemont_scaled ~cores:4 () in
  (try
     let (_ : Driver.result) =
       Driver.spmv ~threads:4 m4 Pipeline.Baseline (Encoding.dcsr ()) coo
     in
     Alcotest.fail "dense-outer-loop must require a dense top level"
   with Invalid_argument _ -> ())

(* ASaP helps on a memory-bound unstructured matrix (the paper's central
   claim, scaled down): more throughput than baseline, and prefetches are
   issued and useful. *)
let test_asap_speedup_memory_bound () =
  let coo =
    Generate.power_law ~seed:42 ~rows:150_000 ~cols:150_000 ~avg_deg:5
      ~alpha:1.9 ()
  in
  let base = Driver.spmv machine Pipeline.Baseline (Encoding.csr ()) coo in
  let asap =
    Driver.spmv machine (Pipeline.Asap Asap.default) (Encoding.csr ()) coo
  in
  check "correct" true (Driver.check_spmv coo asap < 1e-9);
  let sp = Driver.throughput asap /. Driver.throughput base in
  check (Printf.sprintf "speedup > 1.1 (got %.2f)" sp) true (sp > 1.1);
  check "prefetches issued" true
    (asap.Driver.report.Exec.rp_mem.Hierarchy.st_sw_issued > 0);
  check "prefetches useful" true
    (asap.Driver.report.Exec.rp_mem.Hierarchy.st_sw_useful > 0)

(* On a cache-resident structured matrix ASaP's overhead is bounded (the
   paper reports up to ~10-20% slowdown in the compute-bound regime). *)
let test_asap_overhead_bounded () =
  let coo = Generate.banded ~seed:43 ~n:20_000 ~band:2 () in
  let base = Driver.spmv machine Pipeline.Baseline (Encoding.csr ()) coo in
  let asap =
    Driver.spmv machine (Pipeline.Asap Asap.default) (Encoding.csr ()) coo
  in
  let ratio = Driver.throughput asap /. Driver.throughput base in
  check (Printf.sprintf "overhead bounded (got %.2f)" ratio) true
    (ratio > 0.7)

(* The §3.2.2 mechanism: with segments shorter than the prefetch distance,
   the semantic bound covers upcoming segments while the segment-local
   bound cannot. *)
let test_semantic_bound_beats_segment_local_on_short_rows () =
  let coo =
    Generate.power_law ~seed:44 ~rows:40_000 ~cols:40_000 ~avg_deg:3
      ~alpha:2.5 ()
  in
  let enc = Encoding.csr () in
  let sem =
    Driver.spmv machine (Pipeline.Asap Asap.default) enc coo
  in
  let seg =
    Driver.spmv machine
      (Pipeline.Asap { Asap.default with Asap.bound_mode = Asap.Segment_local })
      enc coo
  in
  check "semantic >= segment-local on short rows" true
    (Driver.throughput sem >= Driver.throughput seg)

(* Profile-guided tuning: rolls prefetching back on cache-resident inputs
   and picks a sane distance on memory-bound ones. *)
let test_tuning_rollback () =
  let coo = Generate.banded ~seed:51 ~n:4_000 ~band:2 () in
  let d = Asap_core.Tuning.tune machine (Encoding.csr ()) coo in
  check "baseline chosen" true (d.Asap_core.Tuning.chosen = Pipeline.Baseline);
  check "single profile entry" true
    (List.length d.Asap_core.Tuning.profile = 1);
  check "describe renders" true
    (Astring_contains.contains (Asap_core.Tuning.describe d) "baseline")

let test_tuning_picks_distance () =
  let coo =
    Generate.power_law ~seed:52 ~rows:120_000 ~cols:120_000 ~avg_deg:5
      ~alpha:1.9 ()
  in
  let d =
    Asap_core.Tuning.tune ~candidates:[ 4; 16; 64 ] machine (Encoding.csr ())
      coo
  in
  (match d.Asap_core.Tuning.chosen with
   | Pipeline.Asap cfg ->
     check "candidate distance" true
       (List.mem cfg.Asap_prefetch.Asap.distance [ 4; 16; 64 ])
   | Pipeline.Baseline | Pipeline.Ainsworth_jones _ ->
     Alcotest.fail "expected ASaP on a memory-bound matrix");
  check_int "profiled baseline + 3 candidates" 4
    (List.length d.Asap_core.Tuning.profile)

let test_tuning_needs_dense_outer () =
  let coo = small_matrix 8 in
  (try
     let (_ : Asap_core.Tuning.decision) =
       Asap_core.Tuning.tune machine (Encoding.dcsr ()) coo
     in
     Alcotest.fail "tuning must reject compressed outer loops"
   with Invalid_argument _ -> ())

(* Satellite: an empty candidate list used to crash deep in the profile
   loop; it must be rejected up front as a caller error. *)
let test_tuning_rejects_empty_candidates () =
  let coo = small_matrix 8 in
  try
    let (_ : Asap_core.Tuning.decision) =
      Asap_core.Tuning.tune ~candidates:[] machine (Encoding.csr ()) coo
    in
    Alcotest.fail "tuning must reject an empty candidate list"
  with Invalid_argument msg ->
    check "empty-candidates message names the cause" true
      (Astring_contains.contains msg "empty candidate")

(* The sweep decision is a function of the candidate SET: permuting the
   list changes neither the pick nor the per-candidate profile, and
   cycle ties break towards the smaller distance. *)
let test_tuning_candidate_order_invariant () =
  let coo =
    Generate.power_law ~seed:53 ~rows:40_000 ~cols:40_000 ~avg_deg:5
      ~alpha:1.9 ()
  in
  let enc = Encoding.csr () in
  let sorted_profile d =
    List.sort compare d.Asap_core.Tuning.profile
  in
  let d1 =
    Asap_core.Tuning.tune ~candidates:[ 4; 16; 64 ] machine enc coo
  in
  let d2 =
    Asap_core.Tuning.tune ~candidates:[ 64; 4; 16 ] machine enc coo
  in
  check "same decision under permutation" true
    (d1.Asap_core.Tuning.chosen = d2.Asap_core.Tuning.chosen);
  check "same profile under permutation" true
    (sorted_profile d1 = sorted_profile d2);
  (* Duplicated candidates tie exactly; the duplicate must not flip the
     pick. *)
  let d3 =
    Asap_core.Tuning.tune ~candidates:[ 16; 4; 16; 64 ] machine enc coo
  in
  check "duplicates don't flip the pick" true
    (d1.Asap_core.Tuning.chosen = d3.Asap_core.Tuning.chosen)

(* Rank-3 CSF tensor-times-vector: the §3.2.2 bound recursion at depth 3,
   all variants, checked against the reference. *)
let test_ttv_all_variants () =
  let coo =
    Asap_workloads.Generate.tensor3 ~seed:9 ~dims:[| 20; 30; 40 |] ~nnz:500 ()
  in
  List.iter
    (fun (vn, v) ->
      let r = Driver.ttv machine v coo in
      check ("ttv " ^ vn) true (Driver.check_ttv coo r < 1e-9))
    variants

let test_ttv_sites_and_bounds () =
  let k = Asap_lang.Kernel.ttv () in
  let c = Pipeline.compile k (Pipeline.Asap Asap.default) in
  check_int "three sites" 3 c.Pipeline.n_prefetch_sites;
  let s = Pipeline.listing c in
  (* The recursive chain: Bj_pos indexed by Bi_pos's total, Bk_pos by
     Bj_pos's total (§3.2.2). *)
  check "chain level 2" true
    (Astring_contains.contains s "memref.load %Bj_pos[%Bi_pos_end]");
  check "chain level 3" true
    (Astring_contains.contains s "memref.load %Bk_pos[%Bj_pos_end]")

(* Optimisation passes preserve end-to-end semantics and don't regress
   instruction counts. *)
let test_passes_preserve_spmv () =
  let coo = small_matrix 7 in
  let k = Asap_lang.Kernel.spmv ~enc:(Encoding.csr ()) () in
  let c = Pipeline.compile k (Pipeline.Asap Asap.default) in
  let fn1, _ = Asap_ir.Licm.run c.Pipeline.fn in
  let fn2, _ = Asap_ir.Fold.run fn1 in
  let st = Asap_tensor.Storage.pack (Encoding.csr ()) coo in
  let run fn =
    let out = Array.make coo.Coo.dims.(0) 0. in
    let dense =
      [ ("c", Asap_sim.Runtime.RF (Array.init coo.Coo.dims.(1) float_of_int));
        ("a", Asap_sim.Runtime.RF out) ]
    in
    let bufs =
      Asap_core.Bindings.storage_bufs c.Pipeline.cc st ~binary:false ~dense
    in
    let scalars =
      Asap_core.Bindings.scalar_args c.Pipeline.cc
        ~extents:[| coo.Coo.dims.(0); coo.Coo.dims.(1) |]
    in
    let (_ : Asap_sim.Exec.report) = Asap_sim.Exec.run machine fn ~bufs ~scalars in
    out
  in
  let a = run c.Pipeline.fn and b = run fn2 in
  check "passes preserve results" true (a = b)

let test_pipeline_optimize_flag () =
  let coo = small_matrix 11 in
  let enc = Encoding.csr () in
  let r =
    let k = Asap_lang.Kernel.spmv ~enc () in
    let c = Pipeline.compile ~optimize:true k (Pipeline.Asap Asap.default) in
    check "optimized IR verifies" true
      (Asap_ir.Verify.check_result c.Pipeline.fn = Ok ());
    Driver.spmv machine (Pipeline.Asap Asap.default) enc coo
  in
  check "still correct" true (Driver.check_spmv coo r < 1e-9)

let test_pipeline_names () =
  check "names" true
    (Pipeline.variant_name Pipeline.Baseline = "baseline"
     && Pipeline.variant_name (Pipeline.Asap Asap.default) = "asap")

(* --- Reference kernels --------------------------------------------- *)

let test_reference_spmv () =
  let coo = Coo.of_triples ~rows:2 ~cols:3 [ (0, 1, 2.); (1, 2, 3.) ] in
  let a = Reference.spmv coo [| 1.; 10.; 100. |] in
  Alcotest.(check (array (float 1e-12))) "spmv" [| 20.; 300. |] a

let test_reference_spmm () =
  let coo = Coo.of_triples ~rows:2 ~cols:2 [ (0, 0, 2.); (1, 1, 3.) ] in
  let a = Reference.spmm coo [| 1.; 2.; 3.; 4. |] ~n:2 in
  Alcotest.(check (array (float 1e-12))) "spmm" [| 2.; 4.; 9.; 12. |] a

let test_reference_binary () =
  let coo = Coo.of_triples ~rows:2 ~cols:2 [ (0, 0, 1.); (1, 1, 1.) ] in
  let a = Reference.spmv_binary coo [| 1; 0 |] in
  check "binary" true (a = [| 1; 0 |])

(* --- Metrics ------------------------------------------------------- *)

let test_summary () =
  let xs = [| 2.; 4.; 8. |] in
  check "hmean" true
    (Float.abs (Summary.harmonic_mean xs -. (3. /. 0.875)) < 1e-9);
  check "mean" true (Summary.mean xs = 14. /. 3.);
  check "geomean" true (Float.abs (Summary.geometric_mean xs -. 4.) < 1e-9);
  let e = Summary.ews ~base:[| 1.; 1. |] ~variant:[| 2.; 2. |] in
  check "ews 2x" true (Float.abs (e -. 2.) < 1e-9);
  check "cov of constant" true (Summary.cov [| 5.; 5.; 5. |] = 0.)

let test_regress () =
  let pts = Array.init 20 (fun i ->
      let x = float_of_int i in
      (x, (0.5 *. x) +. 3.))
  in
  let f = Regress.fit pts in
  check "slope" true (Float.abs (f.Regress.slope -. 0.5) < 1e-9);
  check "intercept" true (Float.abs (f.Regress.intercept -. 3.) < 1e-9);
  check "r2 perfect" true (f.Regress.r2 > 0.999);
  check "break-even" true (Float.abs (Regress.x_at f 4.) -. 2. < 1e-9);
  check "render" true (Astring_contains.contains (Regress.to_string f) "R^2")

let test_roofline () =
  let m =
    Roofline.of_machine ~freq_ghz:2.4 ~width:3 ~line_bytes:64 ~dram_gap:2
      ~lat_l2:17 ~lat_l3:50 ~threads:1 ()
  in
  (* Low intensity: bandwidth bound; high intensity: compute bound. *)
  let low = Roofline.attainable m ~ceiling:"DRAM" ~ai:0.01 in
  let high = Roofline.attainable m ~ceiling:"DRAM" ~ai:100. in
  check "bw bound" true (low < m.Roofline.peak_gflops);
  check "compute bound" true (high = m.Roofline.peak_gflops);
  check "point renders" true
    (Astring_contains.contains
       (Roofline.point_to_string m
          { Roofline.p_label = "x"; p_ai = 0.1; p_gflops = 1.0 })
       "GFLOP/s")

(* --- Workloads ----------------------------------------------------- *)

let test_metrics_edge_cases () =
  (try
     let (_ : float) = Summary.harmonic_mean [| 1.; 0. |] in
     Alcotest.fail "hmean accepted non-positive"
   with Invalid_argument _ -> ());
  (try
     let (_ : float) = Summary.ews ~base:[| 1. |] ~variant:[| 1.; 2. |] in
     Alcotest.fail "ews accepted mismatched lengths"
   with Invalid_argument _ -> ());
  (try
     let (_ : Regress.fit) = Regress.fit [| (1., 1.) |] in
     Alcotest.fail "fit accepted a single point"
   with Invalid_argument _ -> ());
  (try
     let (_ : Regress.fit) = Regress.fit [| (2., 1.); (2., 3.) |] in
     Alcotest.fail "fit accepted degenerate x"
   with Invalid_argument _ -> ())

let test_bindings_errors () =
  let coo = small_matrix 10 in
  let k = Asap_lang.Kernel.spmv ~enc:(Encoding.csr ()) () in
  let c = Pipeline.compile k Pipeline.Baseline in
  let st = Asap_tensor.Storage.pack (Encoding.csr ()) coo in
  (* Missing dense operand binding is reported by name. *)
  (try
     let (_ : (Asap_ir.Ir.buffer * Asap_sim.Runtime.rbuf) list) =
       Asap_core.Bindings.storage_bufs c.Pipeline.cc st ~binary:false
         ~dense:[ ("c", Asap_sim.Runtime.RF [| 1. |]) ]
     in
     Alcotest.fail "accepted missing output binding"
   with Invalid_argument m ->
     check "names the operand" true (Astring_contains.contains m "a"));
  (* Extent array too short. *)
  (try
     let (_ : int list) =
       Asap_core.Bindings.scalar_args c.Pipeline.cc ~extents:[| 3 |]
     in
     Alcotest.fail "accepted missing extent"
   with Invalid_argument _ -> ())

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  check "same stream" true
    (List.init 20 (fun _ -> Rng.int a 1000)
     = List.init 20 (fun _ -> Rng.int b 1000));
  let r = Rng.create 8 in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    if x < 0. || x >= 1. then Alcotest.fail "float out of range"
  done

let test_rng_power_law_bounds () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let d = Rng.power_law r ~alpha:2.0 ~x_min:1 ~x_max:50 in
    if d < 1 || d > 50 then Alcotest.fail "power law out of bounds"
  done

let test_rng_exponential_mean () =
  let r = Rng.create 10 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    let x = Rng.exponential r ~mean:8.0 in
    if x < 0 then Alcotest.fail "exponential must be non-negative";
    sum := !sum + x
  done;
  let m = float_of_int !sum /. float_of_int n in
  check (Printf.sprintf "mean near 8 (got %.2f)" m) true
    (m > 7.0 && m < 9.0)

let test_generators_deterministic () =
  let a = Generate.power_law ~seed:5 ~rows:100 ~cols:100 ~avg_deg:4 ~alpha:2. () in
  let b = Generate.power_law ~seed:5 ~rows:100 ~cols:100 ~avg_deg:4 ~alpha:2. () in
  check "same matrix" true (Coo.to_dense a = Coo.to_dense b)

let test_generator_shapes () =
  let g = Generate.stencil_2d ~seed:1 ~side:10 () in
  check_int "5-point interior nnz" (10 * 10 * 5 - 4 * 10) (Coo.nnz g);
  let b = Generate.banded ~seed:1 ~n:10 ~band:1 () in
  check_int "tridiagonal nnz" 28 (Coo.nnz b);
  let u = Generate.uniform ~seed:1 ~rows:50 ~cols:50 ~nnz:200 () in
  check "uniform nnz" true (Coo.nnz u = 200);
  let h = Generate.heavy_tail ~seed:1 ~rows:100 ~cols:100 ~nnz:400 ~hubs:4 () in
  let st = Coo.matrix_stats h in
  check "hubs dominate" true (st.Coo.s_row_max > 40)

(* --- Par: persistent pool ------------------------------------------- *)

let test_par_pool_basics () =
  let p = Asap_core.Par.pool ~workers:3 in
  check_int "pool size" 3 (Asap_core.Par.pool_size p);
  let xs = Array.init 101 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int))
    "map_pool = Array.map" (Array.map f xs)
    (Asap_core.Par.map_pool p ~jobs:4 f xs);
  (* The pool is persistent: repeated maps reuse the same domains. *)
  Alcotest.(check (array int))
    "second map reuses workers" (Array.map f xs)
    (Asap_core.Par.map_pool p ~jobs:4 f xs);
  check_int "workers survive" 3 (Asap_core.Par.pool_size p);
  Asap_core.Par.shutdown p;
  check_int "shutdown empties" 0 (Asap_core.Par.pool_size p);
  (* Idempotent shutdown; maps afterwards degrade to sequential. *)
  Asap_core.Par.shutdown p;
  Alcotest.(check (array int))
    "sequential after shutdown" (Array.map f xs)
    (Asap_core.Par.map_pool p ~jobs:4 f xs)

let test_par_pool_nested_and_errors () =
  let p = Asap_core.Par.pool ~workers:2 in
  (* A worker (or the draining caller) re-entering its own pool must
     degrade to Array.map, not deadlock. *)
  let inner = Array.init 5 Fun.id in
  let nested =
    Asap_core.Par.map_pool p ~jobs:3
      (fun x ->
        Array.fold_left ( + ) x (Asap_core.Par.map_pool p ~jobs:3 Fun.id inner))
      (Array.init 40 Fun.id)
  in
  Alcotest.(check (array int))
    "nested map degrades" (Array.init 40 (fun x -> x + 10)) nested;
  (* The first worker exception is re-raised on the caller; the pool
     stays usable afterwards. *)
  (try
     ignore
       (Asap_core.Par.map_pool p ~jobs:3
          (fun x -> if x = 17 then failwith "boom" else x)
          (Array.init 40 Fun.id));
     Alcotest.fail "exception swallowed"
   with Failure m -> check "error propagates" true (m = "boom"));
  Alcotest.(check (array int))
    "pool usable after error" (Array.init 9 succ)
    (Asap_core.Par.map_pool p ~jobs:3 succ (Array.init 9 Fun.id));
  Asap_core.Par.shutdown p

let test_par_map_jobs_invariant () =
  let xs = Array.init 64 (fun i -> i - 7) in
  let f x = Printf.sprintf "%d" (x * 3) in
  Alcotest.(check (array string))
    "Par.map jobs 1 = jobs 4" (Asap_core.Par.map ~jobs:1 f xs)
    (Asap_core.Par.map ~jobs:4 f xs)

(* Satellite d: profile-guided tuning is jobs-invariant — the decision
   AND the profile it was made from are identical whether the profile
   runs sequentially or on the domain pool, across encodings with a
   dense outer loop and both execution engines. *)
let test_tuning_jobs_invariant () =
  let coo =
    Generate.power_law ~seed:57 ~rows:40_000 ~cols:40_000 ~avg_deg:5
      ~alpha:1.9 ()
  in
  List.iter
    (fun (en, enc) ->
      List.iter
        (fun engine ->
          let tune jobs =
            Asap_core.Tuning.tune ~engine ~jobs ~candidates:[ 8; 32 ] machine
              enc coo
          in
          let d1 = tune 1 and d4 = tune 4 in
          let label =
            Printf.sprintf "%s/%s" en (Exec.engine_to_string engine)
          in
          check (label ^ ": same decision") true
            (d1.Asap_core.Tuning.chosen = d4.Asap_core.Tuning.chosen);
          check (label ^ ": identical profile") true
            (d1.Asap_core.Tuning.profile = d4.Asap_core.Tuning.profile))
        [ `Interp; `Compiled ])
    [ ("csr", Encoding.csr ()); ("csc", Encoding.csc ()) ]

let test_suite_structure () =
  check "has groups" true (List.length Suite.groups = 7);
  check "selected six" true (List.length Suite.selected_groups = 6);
  List.iter
    (fun g -> check ("group nonempty " ^ g) true (Suite.by_group g <> []))
    Suite.groups;
  check "spmm subset nonempty" true (List.length Suite.spmm_subset >= 8);
  let e = Suite.find "GAP-twitter" in
  check "twitter in GAP" true (e.Suite.group = "GAP");
  (try
     let (_ : Suite.entry) = Suite.find "no-such-matrix" in
     Alcotest.fail "found a ghost"
   with Invalid_argument _ -> ())

let suite =
  [ Alcotest.test_case "spmv variants x formats" `Slow
      test_spmv_all_variants_all_formats;
    Alcotest.test_case "spmv wide indices" `Quick test_spmv_wide_indices;
    Alcotest.test_case "spmm variants" `Slow test_spmm_all_variants;
    Alcotest.test_case "binary spmv" `Slow test_spmv_binary;
    Alcotest.test_case "binary spmm" `Slow test_spmm_binary;
    Alcotest.test_case "parallel spmv" `Slow test_spmv_parallel_matches;
    Alcotest.test_case "parallel needs dense outer" `Quick
      test_parallel_rejects_compressed_outer;
    Alcotest.test_case "asap speedup (memory bound)" `Slow
      test_asap_speedup_memory_bound;
    Alcotest.test_case "asap overhead bounded" `Slow
      test_asap_overhead_bounded;
    Alcotest.test_case "semantic vs segment bound" `Slow
      test_semantic_bound_beats_segment_local_on_short_rows;
    Alcotest.test_case "tuning rollback" `Slow test_tuning_rollback;
    Alcotest.test_case "tuning picks distance" `Slow
      test_tuning_picks_distance;
    Alcotest.test_case "tuning needs dense outer" `Quick
      test_tuning_needs_dense_outer;
    Alcotest.test_case "tuning rejects empty candidates" `Quick
      test_tuning_rejects_empty_candidates;
    Alcotest.test_case "tuning candidate-order invariant" `Slow
      test_tuning_candidate_order_invariant;
    Alcotest.test_case "ttv all variants" `Quick test_ttv_all_variants;
    Alcotest.test_case "ttv csf bound chain" `Quick test_ttv_sites_and_bounds;
    Alcotest.test_case "licm+fold preserve spmv" `Quick
      test_passes_preserve_spmv;
    Alcotest.test_case "pipeline optimize flag" `Quick
      test_pipeline_optimize_flag;
    Alcotest.test_case "pipeline names" `Quick test_pipeline_names;
    Alcotest.test_case "reference spmv" `Quick test_reference_spmv;
    Alcotest.test_case "reference spmm" `Quick test_reference_spmm;
    Alcotest.test_case "reference binary" `Quick test_reference_binary;
    Alcotest.test_case "summary stats" `Quick test_summary;
    Alcotest.test_case "regression fit" `Quick test_regress;
    Alcotest.test_case "roofline" `Quick test_roofline;
    Alcotest.test_case "metrics edge cases" `Quick test_metrics_edge_cases;
    Alcotest.test_case "bindings errors" `Quick test_bindings_errors;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng power law" `Quick test_rng_power_law_bounds;
    Alcotest.test_case "rng exponential" `Quick test_rng_exponential_mean;
    Alcotest.test_case "generators deterministic" `Quick
      test_generators_deterministic;
    Alcotest.test_case "generator shapes" `Quick test_generator_shapes;
    Alcotest.test_case "par pool basics" `Quick test_par_pool_basics;
    Alcotest.test_case "par pool nested/errors" `Quick
      test_par_pool_nested_and_errors;
    Alcotest.test_case "par map jobs-invariant" `Quick
      test_par_map_jobs_invariant;
    Alcotest.test_case "tuning jobs-invariant" `Slow
      test_tuning_jobs_invariant;
    Alcotest.test_case "suite structure" `Quick test_suite_structure ]

(* qcheck: interpreted sparsified SpMV equals the reference for random
   matrices across every encoding and variant. *)
let qcheck_spmv_equivalence =
  let gen =
    QCheck2.Gen.(
      let* rows = int_range 1 20 in
      let* cols = int_range 1 20 in
      let* n = int_range 0 40 in
      let* entries =
        list_size (pure n)
          (triple (int_range 0 (rows - 1)) (int_range 0 (cols - 1))
             (map (fun x -> float_of_int x) (int_range 1 9)))
      in
      let* enc_i = int_range 0 3 in
      let* var_i = int_range 0 2 in
      pure (rows, cols, entries, enc_i, var_i))
  in
  QCheck2.Test.make ~count:120 ~name:"interp spmv = reference (random)" gen
    (fun (rows, cols, entries, enc_i, var_i) ->
      let coo = Coo.of_triples ~rows ~cols entries in
      let enc = List.nth (encodings ()) enc_i in
      let _, v = List.nth variants var_i in
      let r = Driver.spmv machine v enc coo in
      Driver.check_spmv coo r < 1e-9)

let suite = suite @ [ QCheck_alcotest.to_alcotest qcheck_spmv_equivalence ]
