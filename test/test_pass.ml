(* Pass-pipeline subsystem tests: spec syntax and error positions,
   registry validation (unknown passes/parameters, duplicate
   registration, schema checks), canonical forms, the deprecated
   [?optimize] alias, and the pass.<name>.* runner counters. *)

module Spec = Asap_pass.Spec
module Pass = Asap_pass.Pass
module Runner = Asap_pass.Runner
module Builtin = Asap_pass.Builtin
module Pipeline = Asap_core.Pipeline
module Kernel = Asap_lang.Kernel
module Encoding = Asap_tensor.Encoding
module Registry = Asap_obs.Registry
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones

let check = Alcotest.(check bool)
let check_s = Alcotest.(check string)
let check_int = Alcotest.(check int)
let contains = Astring_contains.contains

(* --- Spec syntax ------------------------------------------------------ *)

let test_spec_parse () =
  let s =
    Spec.parse " sparsify , asap { d = 32 , strategy = both } ,unroll{f=4}"
  in
  (match s with
   | [ a; b; c ] ->
     check_s "first item" "sparsify" a.Spec.pi_name;
     check "first has no params" true (a.Spec.pi_params = []);
     check_s "second item" "asap" b.Spec.pi_name;
     check "params in source order" true
       (b.Spec.pi_params
        = [ ("d", Spec.Vint 32); ("strategy", Spec.Vsym "both") ]);
     check_s "third reprints" "unroll{f=4}" (Spec.to_string [ c ])
   | _ -> Alcotest.fail "expected 3 items");
  (* Canonical spelling is a to_string/parse fixed point. *)
  let text = "sparsify,asap{d=32,strategy=both},unroll{f=4}" in
  check_s "print/parse fixed point" text (Spec.to_string (Spec.parse text));
  check "negative integer value" true
    (Spec.parse "p{x=-3}"
     = [ { Spec.pi_name = "p"; pi_params = [ ("x", Spec.Vint (-3)) ] } ])

let err_pos text =
  match Spec.parse text with
  | (_ : Spec.t) -> Alcotest.fail ("unexpectedly parsed: " ^ text)
  | exception Spec.Error { pos; msg } -> (pos, msg)

let test_spec_error_positions () =
  let pos, msg = err_pos "" in
  check_int "empty spec at 1" 1 pos;
  check "empty spec message" true (contains msg "empty");
  (* "sparsify,," — the missing item is reported at the second comma. *)
  let pos, msg = err_pos "sparsify,," in
  check_int "missing item position" 10 pos;
  check "missing item message" true (contains msg "name");
  (* "asap{d 32}" — '=' expected right after the parameter name. *)
  let pos, msg = err_pos "asap{d 32}" in
  check_int "missing '=' position" 8 pos;
  check "missing '=' message" true (contains msg "=");
  let _, msg = err_pos "asap{d=32,d=4}" in
  check "duplicate parameter message" true (contains msg "duplicate");
  (* Stray character after a complete item. *)
  let pos, msg = err_pos "fold licm" in
  check_int "stray char position" 6 pos;
  check "stray char message" true (contains msg "unexpected");
  (* parse_result renders position and the spec itself. *)
  (match Spec.parse_result "asap{" with
   | Ok _ -> Alcotest.fail "parsed dangling brace"
   | Error m ->
     check "parse_result carries pos" true (contains m "at 6");
     check "parse_result quotes spec" true (contains m "asap{"))

(* --- Registry validation --------------------------------------------- *)

let expect_invalid name spec needles =
  match Runner.resolve spec with
  | (_ : Runner.resolved) -> Alcotest.fail (name ^ ": resolved")
  | exception Invalid_argument m ->
    List.iter
      (fun n -> check (name ^ ": mentions " ^ n) true (contains m n))
      (spec :: needles)

let test_resolve_errors () =
  expect_invalid "unknown pass" "sparsify,nope" [ "unknown pass"; "nope" ];
  expect_invalid "unknown parameter" "sparsify,asap{q=1}"
    [ "no parameter"; "\"q\"" ];
  expect_invalid "symbol for int" "sparsify,asap{d=both}"
    [ "takes an integer"; "both" ];
  expect_invalid "int for symbol" "sparsify,asap{strategy=3}"
    [ "takes a symbol"; "both|inner|outer" ];
  expect_invalid "bad symbol" "sparsify,asap{strategy=diag}"
    [ "must be one of"; "diag" ];
  expect_invalid "entry not first" "fold,sparsify" [ "must come first" ];
  expect_invalid "hook after ir pass" "sparsify,fold,asap"
    [ "must directly follow" ];
  expect_invalid "hook without entry" "asap" [ "must directly follow" ];
  (* Syntax errors surface as Invalid_argument too, with the position. *)
  expect_invalid "syntax error" "sparsify,," [ "at 10" ]

let dummy_ir_pass name =
  { Pass.name; doc = "test dummy"; params = [];
    kind = Pass.Ir_pass (fun _ fn -> (fn, 0)); counts_sites = false }

let test_register_duplicate () =
  Builtin.ensure ();
  (* Clashing with a builtin is rejected. *)
  (match Pass.register (dummy_ir_pass "fold") with
   | () -> Alcotest.fail "duplicate of builtin accepted"
   | exception Invalid_argument m ->
     check "duplicate names the pass" true (contains m "\"fold\"");
     check "duplicate says duplicate" true (contains m "duplicate"));
  (* A fresh pass registers once, resolves, and rejects re-registration. *)
  Pass.register (dummy_ir_pass "test-noop");
  check "registered pass resolves" true
    (List.length (Runner.resolve "sparsify,test-noop") = 2);
  (match Pass.register (dummy_ir_pass "test-noop") with
   | () -> Alcotest.fail "re-registration accepted"
   | exception Invalid_argument m ->
     check "re-registration rejected" true (contains m "test-noop"))

let test_register_schema () =
  let with_param p =
    { (dummy_ir_pass "test-bad-schema") with Pass.params = [ p ] }
  in
  (match
     Pass.register
       (with_param
          { Pass.p_name = "m"; p_doc = ""; p_default = Spec.Vsym "zzz";
            p_syms = [ "a"; "b" ] })
   with
   | () -> Alcotest.fail "default outside symbol set accepted"
   | exception Invalid_argument m ->
     check "schema error names default" true (contains m "zzz"));
  match
    Pass.register
      (with_param
         { Pass.p_name = "m"; p_doc = ""; p_default = Spec.Vint 1;
           p_syms = [ "a" ] })
  with
  | () -> Alcotest.fail "integer default with symbols accepted"
  | exception Invalid_argument m ->
    check "schema error names param" true (contains m "test-bad-schema.m")

(* --- Canonical forms -------------------------------------------------- *)

let test_canonical () =
  let c = Runner.canonical_of_string "sparsify,asap" in
  check_s "defaults filled in declared order"
    (Printf.sprintf "sparsify,asap{d=%d,l=%d,strategy=both,bound=semantic,step1=true}"
       Asap.default.Asap.distance Asap.default.Asap.locality)
    c;
  check "canonical is a fixed point" true (Runner.canonical_of_string c = c);
  check "spellings converge" true
    (Runner.canonical_of_string
       (Printf.sprintf " sparsify , asap { d = %d } "
          Asap.default.Asap.distance)
     = c);
  check "distinct pipelines stay distinct" true
    (Runner.canonical_of_string "sparsify,asap{d=16}" <> c);
  check "parameter order does not matter" true
    (Runner.canonical_of_string "sparsify,asap{l=2,d=16}"
     = Runner.canonical_of_string "sparsify,asap{d=16,l=2}")

(* --- Variant specs and the ?optimize alias ---------------------------- *)

let test_optimize_alias () =
  let enc = Encoding.csr () in
  let k = Kernel.spmv ~enc () in
  check_s "baseline spec" "sparsify" (Pipeline.spec_of_variant Pipeline.Baseline);
  let asap_v = Pipeline.Asap { Asap.default with Asap.distance = 8 } in
  check "optimize alias appends fold,licm" true
    (let s = Pipeline.spec_of_variant ~optimize:true asap_v in
     contains s ",fold,licm" && contains s "asap{d=8,");
  List.iter
    (fun v ->
      let via_flag = Pipeline.compile ~optimize:true k v in
      let via_spec =
        Pipeline.compile
          ~pipeline:(Pipeline.spec_of_variant ~optimize:true v) k v
      in
      check_s "alias IR byte-identical" (Pipeline.listing via_flag)
        (Pipeline.listing via_spec);
      check_int "alias sites agree" via_flag.Pipeline.n_prefetch_sites
        via_spec.Pipeline.n_prefetch_sites)
    [ Pipeline.Baseline; asap_v;
      Pipeline.Ainsworth_jones { Aj.default with Aj.distance = 8 } ]

(* --- Runner execution and counters ------------------------------------ *)

let test_runner_counters () =
  let enc = Encoding.csr () in
  let k = Kernel.spmv ~enc () in
  let reg = Registry.create () in
  let c =
    Pipeline.compile ~pipeline:"sparsify,asap{d=8},fold,licm,unroll{f=2}"
      ~registry:reg k Pipeline.Baseline
  in
  List.iter
    (fun name ->
      check_int (Printf.sprintf "pass.%s.runs" name) 1
        (Registry.find reg (Printf.sprintf "pass.%s.runs" name)))
    [ "sparsify"; "asap"; "fold"; "licm"; "unroll" ];
  check "asap rewrites = sites" true
    (Registry.find reg "pass.asap.rewrites" = c.Pipeline.n_prefetch_sites);
  check "unroll rewrote a loop" true
    (Registry.find reg "pass.unroll.rewrites" > 0);
  (* Sites flow from the hook pass; the aj ir-pass counts its own. *)
  check "hook pipeline instruments sites" true
    (c.Pipeline.n_prefetch_sites > 0);
  let aj = Pipeline.compile ~pipeline:"sparsify,aj{d=8}" k Pipeline.Baseline in
  check "aj counts matched sites" true (aj.Pipeline.n_prefetch_sites > 0)

(* --- Spec fuzzing ----------------------------------------------------

   Random well-formed specs must survive to_string/parse structurally
   intact; random garbage must either parse or raise {!Spec.Error} with
   an in-range 1-based position — never any other exception — and
   [parse_result] must never raise at all. *)

let gen_pname =
  QCheck2.Gen.(
    let* first = char_range 'a' 'z' in
    let* rest =
      string_size ~gen:(oneofl [ 'a'; 'k'; 'z'; '_'; '3' ]) (int_range 0 6)
    in
    pure (String.make 1 first ^ rest))

let gen_spec_ast =
  QCheck2.Gen.(
    let gen_param =
      let* name = gen_pname in
      let* v =
        oneof
          [ map (fun i -> Spec.Vint i) (int_range (-99) 999);
            map (fun s -> Spec.Vsym s) gen_pname ]
      in
      pure (name, v)
    in
    let gen_item =
      let* pi_name = gen_pname in
      let* params = list_size (int_range 0 3) gen_param in
      (* The parser rejects duplicate parameter names; keep first wins. *)
      let pi_params =
        List.fold_left
          (fun acc (n, v) ->
            if List.mem_assoc n acc then acc else acc @ [ (n, v) ])
          [] params
      in
      pure { Spec.pi_name; pi_params }
    in
    list_size (int_range 1 5) gen_item)

let qcheck_spec_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"random specs round-trip"
    gen_spec_ast (fun ast ->
      let text = Spec.to_string ast in
      Spec.parse text = ast && Spec.to_string (Spec.parse text) = text)

let qcheck_spec_garbage =
  QCheck2.Test.make ~count:500 ~name:"garbage specs fail labelled"
    QCheck2.Gen.(
      string_size
        ~gen:(oneofl
          [ 'a'; 's'; 'p'; '3'; '-'; '{'; '}'; '='; ','; ' '; '%'; ';';
            '\t'; '.' ])
        (int_range 0 40))
    (fun text ->
      (match Spec.parse text with
       | (_ : Spec.t) -> ()
       | exception Spec.Error { pos; msg } ->
         if pos < 1 || pos > String.length text + 1 then
           QCheck2.Test.fail_reportf "position %d out of range (len %d)"
             pos (String.length text);
         if msg = "" then QCheck2.Test.fail_report "empty error message");
      match Spec.parse_result text with
      | Ok (_ : Spec.t) -> true
      | Error m -> contains m "at ")

let suite =
  [ Alcotest.test_case "spec parse/print" `Quick test_spec_parse;
    QCheck_alcotest.to_alcotest qcheck_spec_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_spec_garbage;
    Alcotest.test_case "spec error positions" `Quick
      test_spec_error_positions;
    Alcotest.test_case "resolve errors" `Quick test_resolve_errors;
    Alcotest.test_case "duplicate registration" `Quick
      test_register_duplicate;
    Alcotest.test_case "registration schema" `Quick test_register_schema;
    Alcotest.test_case "canonical forms" `Quick test_canonical;
    Alcotest.test_case "optimize alias" `Quick test_optimize_alias;
    Alcotest.test_case "runner counters" `Quick test_runner_counters ]
