(* Cost-model tests (lib/model): the feature extractor measures what it
   claims on constructed matrices, the model's decisions agree with the
   candidate sweep on a pinned calibration subset (exactly, and — the
   acceptance bound — within 5% of the sweep pick's full-run cycles),
   the rollback knee matches every sweep rollback on structured inputs,
   and Select's three modes expose the advertised fields. *)

module Coo = Asap_tensor.Coo
module Storage = Asap_tensor.Storage
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Tuning = Asap_core.Tuning
module Asap = Asap_prefetch.Asap
module Generate = Asap_workloads.Generate
module Features = Asap_model.Features
module Cost_model = Asap_model.Cost_model
module Select = Asap_model.Select

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let machine = Machine.gracemont_scaled ~hw:Machine.hw_optimized ()
let enc = Encoding.csr ()

let gen spec =
  match Generate.of_spec spec with
  | Ok coo -> coo
  | Error e -> Alcotest.fail e

(* Pinned calibration subset: small enough for CI, spanning both sides
   of the rollback knee and both distance rungs (tools/fit_cost_model.ml
   validates the full suite). *)
let irregular_specs =
  [ "powerlaw:400,5"; "uniform:300,1200"; "road:2000,3";
    "uniform:2500,12000" ]

let structured_specs =
  [ "banded:300,4"; "banded:2500,8"; "stencil2d:50";
    "heavytail:2500,10000,10" ]

(* --- feature extractor ------------------------------------------------ *)

let test_features_counts () =
  let coo = gen "banded:300,4" in
  let f = Features.extract ~machine enc coo in
  check_int "rows" 300 f.Features.f_rows;
  check_int "cols" 300 f.Features.f_cols;
  check_int "nnz" (Coo.nnz coo) f.Features.f_nnz;
  check "row mean = nnz/rows" true
    (abs_float
       (f.Features.f_row_mean
        -. (float_of_int f.Features.f_nnz /. float_of_int f.Features.f_rows))
     < 1e-9);
  check "histogram covers all rows" true
    (Array.fold_left ( + ) 0 f.Features.f_hist = f.Features.f_rows);
  check "banded matrix is near-diagonal" true
    (f.Features.f_band_frac < 0.05);
  check_int "gather bytes = cols * 8" (300 * 8) f.Features.f_gather_bytes;
  check "slice within matrix" true
    (f.Features.f_slice_nnz > 0 && f.Features.f_slice_nnz <= f.Features.f_nnz);
  check "slice lines positive" true (f.Features.f_slice_lines > 0);
  check "extraction cost charged" true (f.Features.f_extract_cycles > 0);
  (* Scalar dump is total (histogram elided) and finite. *)
  List.iter
    (fun (k, v) ->
      check (k ^ " finite") true (Float.is_finite v))
    (Features.to_assoc f)

let test_features_separate_regimes () =
  (* The analytic MPKI estimate must order a cache-resident banded
     matrix far below an irregular power-law gather — that ordering is
     the whole rollback decision. *)
  let fb = Features.extract ~machine enc (gen "banded:2500,8") in
  let fp = Features.extract ~machine enc (gen "powerlaw:3000,6") in
  check "banded cache-resident" true (fb.Features.f_est_mpki < 2.0);
  check "power law memory-bound" true (fp.Features.f_est_mpki > 10.0);
  check "power law heavier tail" true
    (fp.Features.f_tail_mass > fb.Features.f_tail_mass);
  check "power law more varied rows" true
    (fp.Features.f_row_cov > fb.Features.f_row_cov)

let test_features_rank2_only () =
  let t3 = Generate.tensor3 ~seed:9 ~dims:[| 8; 8; 8 |] ~nnz:40 () in
  try
    ignore (Features.extract ~machine enc t3);
    Alcotest.fail "features must reject rank-3 tensors"
  with Invalid_argument _ -> ()

(* --- cost model ------------------------------------------------------- *)

let test_model_agrees_with_sweep () =
  List.iter
    (fun spec ->
      let coo = gen spec in
      let st = Storage.pack enc coo in
      let sweep = Tuning.tune ~st machine enc coo in
      let f = Features.extract ~machine enc coo in
      let pred = Cost_model.predict machine f in
      check (spec ^ ": model = sweep") true
        (Cost_model.same_choice sweep.Tuning.chosen
           pred.Cost_model.p_variant))
    (irregular_specs @ structured_specs)

(* Acceptance bound: on the pinned subset the model's pick must run the
   FULL matrix within 5% of the sweep's pick. *)
let test_model_within_5pct_full_run () =
  List.iter
    (fun spec ->
      let coo = gen spec in
      let st = Storage.pack enc coo in
      let sweep = Tuning.tune ~st machine enc coo in
      let pred =
        Cost_model.predict machine (Features.extract ~machine enc coo)
      in
      let cycles v =
        (Driver.spmv ~st machine v enc coo).Driver.report.Exec.rp_cycles
      in
      let sc = cycles sweep.Tuning.chosen
      and mc = cycles pred.Cost_model.p_variant in
      check
        (Printf.sprintf "%s: model %d within 5%% of sweep %d" spec mc sc)
        true
        (float_of_int mc <= 1.05 *. float_of_int sc))
    [ "powerlaw:400,5"; "uniform:300,1200"; "banded:300,4"; "stencil2d:50" ]

(* Acceptance bound: wherever the sweep rolls back to baseline on a
   structured (low-MPKI) matrix, the model's knee must too. *)
let test_model_matches_sweep_rollbacks () =
  List.iter
    (fun spec ->
      let coo = gen spec in
      let st = Storage.pack enc coo in
      let sweep = Tuning.tune ~st machine enc coo in
      check (spec ^ ": sweep rolls back") true
        (sweep.Tuning.chosen = Pipeline.Baseline);
      let pred =
        Cost_model.predict machine (Features.extract ~machine enc coo)
      in
      check (spec ^ ": model rolls back") true
        (pred.Cost_model.p_variant = Pipeline.Baseline);
      check (spec ^ ": reason mentions the knee") true
        (pred.Cost_model.p_reason <> ""))
    structured_specs

let test_cost_model_shape () =
  let f = Features.extract ~machine enc (gen "powerlaw:400,5") in
  let p = Cost_model.predict machine f in
  (match (p.Cost_model.p_variant, p.Cost_model.p_distance) with
   | Pipeline.Asap cfg, Some d ->
     check_int "distance echoed" cfg.Asap.distance d
   | Pipeline.Asap _, None ->
     Alcotest.fail "ASaP prediction must carry its distance"
   | _ -> Alcotest.fail "expected ASaP on a memory-bound matrix");
  check "speedup above the gate" true
    (p.Cost_model.p_speedup > 1.0);
  (* The distance ladder: tiny matrices take the short rung. *)
  let tiny = Cost_model.predict machine f in
  let big =
    Cost_model.predict machine
      (Features.extract ~machine enc (gen "uniform:2500,12000"))
  in
  check "tiny rung below big rung" true
    (match (tiny.Cost_model.p_distance, big.Cost_model.p_distance) with
     | Some a, Some b -> a < b
     | _ -> false);
  check "describe renders" true
    (String.length (Cost_model.describe p) > 0)

let test_same_choice () =
  let asap d = Pipeline.Asap { Asap.default with Asap.distance = d } in
  check "baseline = baseline" true
    (Cost_model.same_choice Pipeline.Baseline Pipeline.Baseline);
  check "same distance" true (Cost_model.same_choice (asap 16) (asap 16));
  check "different distance" false
    (Cost_model.same_choice (asap 16) (asap 32));
  check "different constructor" false
    (Cost_model.same_choice Pipeline.Baseline (asap 16))

(* --- Select: the three tuning modes ---------------------------------- *)

let test_select_modes () =
  let coo = gen "powerlaw:400,5" in
  let st = Storage.pack enc coo in
  let sw = Select.decide ~st ~mode:`Sweep machine enc coo in
  let md = Select.decide ~st ~mode:`Model machine enc coo in
  let hy = Select.decide ~st ~mode:`Hybrid machine enc coo in
  check "sweep carries no features" true (sw.Select.d_features = None);
  check "sweep carries the profile" true (sw.Select.d_sweep <> None);
  check "model carries features" true (md.Select.d_features <> None);
  check "model skips the sweep" true (md.Select.d_sweep = None);
  check "hybrid runs both" true
    (hy.Select.d_sweep <> None && hy.Select.d_model <> None);
  check "hybrid serves the sweep's choice" true
    (hy.Select.d_chosen = sw.Select.d_chosen);
  check "hybrid records agreement" true (hy.Select.d_agree = Some true);
  check "agreement has zero regret" true
    (hy.Select.d_delta_cycles = Some 0);
  (* Virtual decision cost: the model's O(nnz) pass is charged far below
     the sweep's sliced simulations, and hybrid pays for both. *)
  check "model decisions cheaper" true
    (md.Select.d_tune_cycles < sw.Select.d_tune_cycles);
  check_int "hybrid pays for both"
    (sw.Select.d_tune_cycles + md.Select.d_tune_cycles)
    hy.Select.d_tune_cycles;
  List.iter
    (fun d ->
      check "describe renders" true (String.length (Select.describe d) > 0))
    [ sw; md; hy ]

let suite =
  [ Alcotest.test_case "feature counts" `Quick test_features_counts;
    Alcotest.test_case "features separate regimes" `Quick
      test_features_separate_regimes;
    Alcotest.test_case "features rank-2 only" `Quick test_features_rank2_only;
    Alcotest.test_case "model agrees with sweep (pinned)" `Slow
      test_model_agrees_with_sweep;
    Alcotest.test_case "model within 5% full-run (pinned)" `Slow
      test_model_within_5pct_full_run;
    Alcotest.test_case "model matches sweep rollbacks" `Slow
      test_model_matches_sweep_rollbacks;
    Alcotest.test_case "cost model shape" `Quick test_cost_model_shape;
    Alcotest.test_case "same_choice" `Quick test_same_choice;
    Alcotest.test_case "select modes" `Quick test_select_modes ]
