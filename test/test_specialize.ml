(* Ahead-of-time specialization tests: the rewrite itself (clamp
   elimination and constant-trip unrolling on a hand-built function),
   the specialization fingerprint (distinct shapes, formats and tuned
   configs never collide), a randomized specialized-vs-generic
   differential over the kernel x format x variant grid on the three
   engines, and the serving integration (streaming updates evict
   specialized entries; replay records stay byte-identical at any
   --jobs with specialization on). *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Interp = Asap_sim.Interp
module Runtime = Asap_sim.Runtime
module Specialize = Asap_sim.Specialize
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Rng = Asap_workloads.Rng
module Mix = Asap_serve.Mix
module Scheduler = Asap_serve.Scheduler
module Config = Asap_serve.Config
module Slo = Asap_serve.Slo
module Registry = Asap_obs.Registry
open Asap_ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let free_mem =
  { Interp.m_load = (fun ~pc:_ ~addr:_ ~at -> at + 1);
    m_store = (fun ~pc:_ ~addr:_ ~at:_ -> ());
    m_prefetch = (fun ~addr:_ ~locality:_ ~at:_ -> ()) }

(* --- The rewrite on a hand-built function ----------------------------
   The shape the BSR emitter produces: an outer loop over nb blocks
   whose micro extent is clamped as min(s, n - ib*s), with an inner
   loop over that extent. With n divisible by s the clamp is provably
   the constant s, which in turn makes the inner loop constant-trip. *)

let clamped_fn () =
  let b = Builder.create () in
  let dst = Builder.buf b "dst" Ir.EIdx64 in
  let n = Builder.scalar_param b "n" Ir.Index in
  let nb = Builder.scalar_param b "nb" Ir.Index in
  let c0 = Builder.index b 0 in
  let c2 = Builder.index b 2 in
  let (_ : Ir.value list) =
    Builder.for_ b "ib" c0 nb (fun ib _ ->
        let base = Builder.imul b ib c2 in
        let rext = Builder.imin b c2 (Builder.isub b n base) in
        let acc =
          Builder.for_ b
            ~carried:[ ("acc", Ir.Index, c0) ]
            "c" c0 rext
            (fun c args ->
              [ Builder.iadd b (List.hd args) (Builder.iadd b base c) ])
        in
        Builder.store b dst ib (List.hd acc);
        [])
  in
  Builder.finish b "clamped"

let run_specialized fn scalars rows =
  let facts = Specialize.make ~scalars () in
  let fn', stats = Specialize.apply facts fn in
  let out = Array.make rows 0 in
  let dst = List.hd fn'.Ir.fn_params in
  let dst = match dst with Ir.Pbuf buf -> buf | _ -> assert false in
  let bufs = Runtime.layout fn' [ (dst, Runtime.RI out) ] in
  let (_ : Interp.result) =
    Interp.run fn' ~bufs ~scalars ~mem:free_mem
  in
  (stats, out)

let test_clamp_elimination () =
  (* n = 8, nb = 4: the clamp folds to 2, the inner loop unrolls. *)
  let stats, out = run_specialized (clamped_fn ()) [ 8; 4 ] 4 in
  check_int "clamp proven away" 1 stats.Specialize.sp_clamps;
  check_int "inner loop unrolled" 1 stats.Specialize.sp_unrolled;
  check_int "two iterations expanded" 2 stats.Specialize.sp_iterations;
  check "values preserved" true (out = [| 1; 5; 9; 13 |]);
  (* n = 7 is not divisible by the block side: the edge clamp is live
     (the last block is short) and must survive, so nothing unrolls. *)
  let stats7, out7 = run_specialized (clamped_fn ()) [ 7; 4 ] 4 in
  check_int "live clamp survives" 0 stats7.Specialize.sp_clamps;
  check_int "nothing unrolled" 0 stats7.Specialize.sp_unrolled;
  check "short last block computed" true (out7 = [| 1; 5; 9; 6 |])

(* --- Fingerprints ----------------------------------------------------- *)

let test_fingerprint () =
  let fp ?(kernel = "spmv") ?(format = "csr") ?(pipeline = "sparsify,asap")
      ?(tuned = "d=8") ?(shape = [| 100; 100 |]) () =
    Specialize.fingerprint ~kernel ~format ~pipeline ~tuned ~shape
  in
  let base = fp () in
  check "fingerprint is deterministic" true (base = fp ());
  List.iter
    (fun (what, other) ->
      check (what ^ " changes the fingerprint") true (other <> base))
    [ ("kernel", fp ~kernel:"spmm" ());
      ("format", fp ~format:"bsr2x2" ());
      ("pipeline", fp ~pipeline:"sparsify" ());
      ("tuned config", fp ~tuned:"d=16" ());
      ("shape", fp ~shape:[| 100; 200 |] ());
      ("rank", fp ~shape:[| 100; 100; 100 |] ()) ];
  (* Concatenation must not alias across the shape boundary. *)
  check "shape digits do not alias" true
    (fp ~shape:[| 10; 0 |] () <> fp ~shape:[| 1; 00 |] ())

(* --- Randomized specialized-vs-generic differential -------------------
   Random matrices (including shapes not divisible by the BSR block
   sides, where edge clamps must survive) through kernel x format x
   variant cells: the specialized run must be value-exact against the
   generic bytecode run and report-identical across all three engines.
   Tier-1 samples the grid; ASAP_DIFF_FULL=1 sweeps every cell. *)

let diff_machine = Machine.gracemont_scaled ()

let gen_coo rng =
  let rows, cols =
    match Rng.int rng 4 with
    | 0 -> (1, 1 + Rng.int rng 40)                   (* 1xN *)
    | 1 -> (2 + Rng.int rng 7, 24 + Rng.int rng 24)  (* wide *)
    | 2 -> (1 + Rng.int rng 6, 1 + Rng.int rng 6)    (* tiny *)
    | _ -> (8 + Rng.int rng 32, 8 + Rng.int rng 32)  (* general *)
  in
  let target = Rng.int rng (max 2 (rows * cols / 4)) in
  let seen = Hashtbl.create 64 in
  let triples = ref [] in
  for _ = 1 to target do
    let i = Rng.int rng rows and j = Rng.int rng cols in
    if not (Hashtbl.mem seen (i, j)) then begin
      Hashtbl.add seen (i, j) ();
      triples := (i, j, (2. *. Rng.float rng) -. 1.) :: !triples
    end
  done;
  Coo.of_triples ~rows ~cols (List.rev !triples)

let n_matrix_seeds = 6
let matrix_cache : (int, Coo.t) Hashtbl.t = Hashtbl.create 8

let matrix_for seed =
  match Hashtbl.find_opt matrix_cache seed with
  | Some coo -> coo
  | None ->
    let coo = gen_coo (Rng.create (0x5bec + seed)) in
    Hashtbl.add matrix_cache seed coo;
    coo

let diff_kernels = [ ("spmv", `Spmv); ("spmm", `Spmm); ("sddmm", `Sddmm) ]

let diff_encodings () =
  [ Encoding.csr (); Encoding.csc (); Encoding.bsr ~bh:2 ~bw:2 ();
    Encoding.bsr ~bh:2 ~bw:3 () ]

let diff_variants =
  [ ("baseline", Pipeline.Baseline);
    ("asap", Pipeline.Asap { Asap.default with Asap.distance = 4 });
    ("aj", Pipeline.Ainsworth_jones { Aj.default with Aj.distance = 4 }) ]

let run_cell (mseed, (kname, kernel), enc, (vname, variant)) =
  let coo = matrix_for mseed in
  let name =
    Printf.sprintf "%s/%s/%s m%d [%dx%d nnz=%d]" kname enc.Encoding.name
      vname mseed coo.Coo.dims.(0) coo.Coo.dims.(1) (Coo.nnz coo)
  in
  let inner = match kernel with `Spmv -> None | `Spmm | `Sddmm -> Some 3 in
  let cfg ~specialize engine =
    Driver.Cfg.make ~engine ~specialize ?n:inner ~machine:diff_machine
      ~variant ()
  in
  let kspec =
    match kernel with
    | `Spmv -> Driver.Spmv enc
    | `Spmm -> Driver.Spmm enc
    | `Sddmm -> Driver.Sddmm enc
  in
  let generic = Driver.run (cfg ~specialize:false `Bytecode) kspec coo in
  let spec = Driver.run (cfg ~specialize:true `Bytecode) kspec coo in
  check (name ^ ": value-exact vs generic") true
    (generic.Driver.out_f = spec.Driver.out_f
     && generic.Driver.out_b = spec.Driver.out_b);
  (* No cycle assertion here: fewer instructions shift load issue times,
     which can move cache-miss timing either way on tiny inputs. The
     speedup claims live in bench/specialize.ml where they are gated on
     the suite they are made about. *)
  let spec_on e = Driver.run (cfg ~specialize:true e) kspec coo in
  check (name ^ ": interp report identical") true
    ((spec_on `Interp).Driver.report = spec.Driver.report);
  check (name ^ ": compiled report identical") true
    ((spec_on `Compiled).Driver.report = spec.Driver.report);
  let err =
    match kernel with
    | `Spmv -> Driver.check_spmv coo spec
    | `Spmm -> Driver.check_spmm coo ~n:3 spec
    | `Sddmm -> Driver.check_sddmm coo ~kk:3 spec
  in
  check (name ^ ": against dense reference") true (err <= 1e-9)

let diff_grid () =
  List.concat_map
    (fun mseed ->
      List.concat_map
        (fun k ->
          List.concat_map
            (fun enc -> List.map (fun v -> (mseed, k, enc, v)) diff_variants)
            (diff_encodings ()))
        diff_kernels)
    (List.init n_matrix_seeds (fun i -> i + 1))

(* Every (kernel, format) pair at least once, variants and matrices
   rotating with the cell position. *)
let test_differential_pinned () =
  let encs = Array.of_list (diff_encodings ()) in
  let vars = Array.of_list diff_variants in
  List.iteri
    (fun ki (kname, k) ->
      Array.iteri
        (fun ei enc ->
          let v = vars.((ki + ei) mod Array.length vars) in
          let mseed = 1 + ((ki + ei) mod n_matrix_seeds) in
          run_cell (mseed, (kname, k), enc, v))
        encs)
    diff_kernels

(* 16 more cells drawn without replacement by a fixed seed — or, under
   ASAP_DIFF_FULL=1, every cell. *)
let test_differential_random () =
  let grid = Array.of_list (diff_grid ()) in
  if Sys.getenv_opt "ASAP_DIFF_FULL" <> None then Array.iter run_cell grid
  else begin
    let rng = Rng.create 0x5bec in
    let picked = Hashtbl.create 64 in
    let drawn = ref 0 in
    while !drawn < 16 do
      let i = Rng.int rng (Array.length grid) in
      if not (Hashtbl.mem picked i) then begin
        Hashtbl.add picked i ();
        incr drawn;
        run_cell grid.(i)
      end
    done
  end

(* --- Serving integration ---------------------------------------------- *)

let spec_profiles () =
  [ Mix.profile ~specialize:true "powerlaw:400,5";
    Mix.profile ~specialize:true ~format:"bsr" "banded:300,4";
    Mix.profile ~specialize:true ~kernel:`Spmm "uniform:300,1200" ]

let counter rp name =
  Option.value ~default:0 (Registry.get rp.Scheduler.rp_registry name)

let lines rp =
  Array.to_list (Array.map Scheduler.record_to_line rp.Scheduler.rp_records)

let test_serve_specialized_replay () =
  let reqs = Mix.hot_cold ~seed:31 ~n:40 (spec_profiles ()) in
  let run jobs = Scheduler.run Config.(with_jobs jobs default) reqs in
  let a = run 1 and b = run 4 in
  check "specialized replay byte-identical across jobs" true
    (lines a = lines b);
  check "specialized artefacts built" true (counter a "serve.spec.miss" > 0);
  check "specialized artefacts served from cache" true
    (counter a "serve.spec.hit" > 0);
  check "pack memoisation engaged" true (counter a "serve.pack.miss" > 0);
  check "pack hits never negative" true (counter a "serve.pack.hit" >= 0);
  (* Uncached replay performs no memoised packs (the honest baseline
     repacks per build) and serves no specialized cache hits. *)
  let un = Scheduler.run Config.(with_cache_capacity 0 default) reqs in
  check_int "no memoised packs uncached" 0 (counter un "serve.pack.miss");
  check_int "no cache hits uncached" 0 (counter un "serve.spec.hit")

let test_update_evicts_specialized () =
  let profiles = spec_profiles () in
  let reqs = Mix.hot_cold ~seed:31 ~n:40 profiles in
  let updates = Mix.update_stream ~seed:31 ~n:6 ~mean_gap_ms:0.3 profiles in
  let plain = Scheduler.run Config.default reqs in
  let upd = Scheduler.run ~updates Config.default reqs in
  let upd4 = Scheduler.run ~updates Config.(with_jobs 4 default) reqs in
  check "updated replay byte-identical across jobs" true
    (lines upd = lines upd4);
  check "updates invalidated cached entries" true
    (upd.Scheduler.rp_summary.Slo.s_invalidated > 0);
  check_int "no stale hits" 0 upd.Scheduler.rp_summary.Slo.s_stale_hits;
  (* The version bump misses the specialized cache and rebuilds: more
     specialized builds than the update-free replay of the same mix. *)
  check "version bump rebuilt specialized entries" true
    (counter upd "serve.spec.miss" > counter plain "serve.spec.miss")

let suite =
  [ Alcotest.test_case "clamp elimination + unroll" `Quick
      test_clamp_elimination;
    Alcotest.test_case "fingerprints never collide" `Quick test_fingerprint;
    Alcotest.test_case "differential: kernel x format cover" `Quick
      test_differential_pinned;
    Alcotest.test_case "differential: seeded random sample" `Quick
      test_differential_random;
    Alcotest.test_case "serve: specialized replay + pack memo" `Quick
      test_serve_specialized_replay;
    Alcotest.test_case "serve: updates evict specialized entries" `Quick
      test_update_evicts_specialized ]
