(* Kernel-scenario benchmark: the scenario-diversity kernels (SDDMM and
   blocked BSR SpMV) ASaP-vs-baseline in virtual cycles, plus the
   streaming-update serving gates.

   All gates are over *virtual* quantities (deterministic replay
   properties, not host measurements):

   - each scenario's ASaP variant must be value-correct against the dense
     reference and no slower than [min_ratio] x baseline virtual cycles;
   - the streaming-update replay's records must be byte-identical
     between [jobs] = 1 and [jobs] = N with updates in flight;
   - the update stream must actually invalidate cached entries
     ([serve.cache.invalidated] > 0) and no hit may ever serve a
     wrong-version entry ([serve.cache.stale_hit] = 0).

   Results go to stdout as JSON (tracked in BENCH_kernels.json by
   tools/kernel_smoke.sh @kernel-smoke).

   Usage: kernels.exe [--engine interp|compiled|bytecode]
                      [n] [seed] [jobs] [min_ratio; 0 disables] [updates] *)

module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Generate = Asap_workloads.Generate
module Mix = Asap_serve.Mix
module Scheduler = Asap_serve.Scheduler
module Config = Asap_serve.Config
module Slo = Asap_serve.Slo
module Registry = Asap_obs.Registry

type scenario = {
  sc_name : string;
  sc_spec : string;              (* Generate.of_spec matrix *)
  sc_kernel : [ `Spmv | `Sddmm ];
  sc_kk : int;                   (* SDDMM dense contraction width *)
  sc_enc : Encoding.t;
}

(* Unstructured matrices sized past the scaled caches (Fig. 6/7: ASaP
   wins on the memory-bound "Selected" class and only there). SDDMM rows
   stay moderate because its output is a dense d_i x d_j buffer. *)
let scenarios =
  [ { sc_name = "sddmm_csr_uniform"; sc_spec = "uniform:4000,40000";
      sc_kernel = `Sddmm; sc_kk = 16; sc_enc = Encoding.csr () };
    { sc_name = "sddmm_csr_powerlaw"; sc_spec = "powerlaw:4000,6";
      sc_kernel = `Sddmm; sc_kk = 16; sc_enc = Encoding.csr () };
    { sc_name = "spmv_csr_uniform"; sc_spec = "uniform:60000,400000";
      sc_kernel = `Spmv; sc_kk = 0; sc_enc = Encoding.csr () };
    { sc_name = "spmv_bsr2x2_powerlaw"; sc_spec = "powerlaw:100000,6";
      sc_kernel = `Spmv; sc_kk = 0;
      sc_enc = Encoding.bsr ~bh:2 ~bw:2 () } ]

let () =
  let engine = ref Exec.default_engine in
  let rec split acc = function
    | [] -> List.rev acc
    | "--engine" :: v :: rest ->
      (match Exec.engine_of_string v with
       | Some e -> engine := e
       | None ->
         Printf.eprintf "unknown engine %s (%s)\n" v Exec.valid_engines;
         exit 1);
      split acc rest
    | a :: rest -> split (a :: acc) rest
  in
  let pos = Array.of_list (split [] (List.tl (Array.to_list Sys.argv))) in
  let argi i default =
    if Array.length pos > i then int_of_string pos.(i) else default
  in
  let argf i default =
    if Array.length pos > i then float_of_string pos.(i) else default
  in
  let n = argi 0 120 in
  let seed = argi 1 11 in
  let jobs = argi 2 4 in
  let min_ratio = argf 3 1.0 in
  let n_updates = argi 4 8 in
  let engine = !engine in
  let machine = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in

  (* --- ASaP vs baseline virtual cycles per scenario ------------------- *)
  let measure sc =
    let coo =
      match Generate.of_spec sc.sc_spec with
      | Ok coo -> coo
      | Error e -> Printf.eprintf "bad spec %s: %s\n" sc.sc_spec e; exit 1
    in
    let kk = sc.sc_kk in
    let run variant =
      match sc.sc_kernel with
      | `Spmv -> Driver.spmv ~engine machine variant sc.sc_enc coo
      | `Sddmm -> Driver.sddmm ~engine ~kk machine variant sc.sc_enc coo
    in
    let base = run Pipeline.Baseline in
    let asap = run (Pipeline.Asap Asap_prefetch.Asap.default) in
    let err =
      match sc.sc_kernel with
      | `Spmv -> Driver.check_spmv coo asap
      | `Sddmm -> Driver.check_sddmm coo ~kk asap
    in
    let bc = base.Driver.report.Exec.rp_cycles
    and ac = asap.Driver.report.Exec.rp_cycles in
    let ratio = float_of_int bc /. float_of_int ac in
    if err > 1e-9 then
      fail "%s: asap output off the dense reference by %g" sc.sc_name err;
    if min_ratio > 0. && ratio < min_ratio then
      fail "%s: asap only %.3fx baseline virtual cycles (need %.2fx)"
        sc.sc_name ratio min_ratio;
    Printf.sprintf
      "    { \"name\": %S, \"matrix\": %S, \"nnz\": %d,\n\
      \      \"baseline_cycles\": %d, \"asap_cycles\": %d,\n\
      \      \"asap_speedup\": %.3f, \"max_err\": %.2e }"
      sc.sc_name sc.sc_spec asap.Driver.nnz bc ac ratio err
  in
  let kernel_rows = List.map measure scenarios in

  (* --- Streaming-update serving gates --------------------------------- *)
  let profiles =
    List.map
      (fun p -> { p with Mix.p_engine = engine })
      (Mix.default_profiles ())
  in
  let reqs = Mix.hot_cold ~seed ~n profiles in
  let updates =
    Mix.update_stream ~seed ~n:n_updates ~mean_gap_ms:0.4 profiles
  in
  let replay jobs =
    Scheduler.run ~updates Config.(with_jobs jobs default) reqs
  in
  let lines rp =
    String.concat "\n"
      (Array.to_list
         (Array.map Scheduler.record_to_line rp.Scheduler.rp_records))
  in
  let rp = replay jobs in
  let rp_seq = replay 1 in
  let identical = String.equal (lines rp) (lines rp_seq) in
  let s = rp.Scheduler.rp_summary in
  let counter name =
    Option.value ~default:0 (Registry.get rp.Scheduler.rp_registry name)
  in
  let invalidated = counter "serve.cache.invalidated" in
  let stale = counter "serve.cache.stale_hit" in
  if not identical then
    fail "update replay records differ between --jobs 1 and --jobs %d" jobs;
  if invalidated <= 0 then
    fail "update stream invalidated no cache entries (%d updates)"
      n_updates;
  if stale <> 0 then fail "%d stale cache hits served" stale;
  if invalidated <> s.Slo.s_invalidated then
    fail "registry invalidations %d disagree with the summary %d"
      invalidated s.Slo.s_invalidated;

  Printf.printf
    "{\n\
    \  \"engine\": \"%s\",\n\
    \  \"kernels\": [\n%s\n  ],\n\
    \  \"serve_updates\": {\n\
    \    \"requests\": %d, \"updates\": %d, \"jobs\": %d,\n\
    \    \"served\": %d, \"hits\": %d, \"misses\": %d,\n\
    \    \"invalidated\": %d, \"stale_hits\": %d,\n\
    \    \"records_jobs_identical\": %b\n\
    \  }\n\
     }\n"
    (Exec.engine_to_string engine)
    (String.concat ",\n" kernel_rows)
    n n_updates jobs
    (s.Slo.s_ok + s.Slo.s_degraded)
    s.Slo.s_hits s.Slo.s_misses invalidated stale identical;
  match !failures with
  | [] -> ()
  | fs ->
    List.iter (fun m -> Printf.eprintf "bench/kernels: FAIL — %s\n" m)
      (List.rev fs);
    exit 1
