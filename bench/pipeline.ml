(* Pipeline benchmark and gate.

   Two claims are checked and reported as JSON (tracked in
   BENCH_pipeline.json by tools/pipeline_smoke.sh @serve-smoke):

   1. Round-trip identity: for every kernel x variant in the golden
      grid, [Parse.func (Printer.to_string fn)] reprints byte-identically
      and is alpha-structurally equal to [fn].

   2. unroll{f=4} on the SpMV microbench is value-exact (bit-identical
      output) and at least MIN_RATIO parity in virtual cycles against
      the same variant without unrolling, for baseline and asap
      pipelines.  Slack scheduling is likewise checked value-exact.

   Usage: pipeline.exe [--engine interp|compiled|bytecode]
                       [rows] [avg_deg] [seed] [min_ratio; 0 disables] *)

module Kernel = Asap_lang.Kernel
module Encoding = Asap_tensor.Encoding
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Printer = Asap_ir.Printer
module Parse = Asap_ir.Parse
module Generate = Asap_workloads.Generate

let variants =
  [ ("baseline", Pipeline.Baseline);
    ("asap", Pipeline.Asap Asap_prefetch.Asap.default);
    ("aj", Pipeline.Ainsworth_jones Asap_prefetch.Ainsworth_jones.default) ]

let grid =
  let open Encoding in
  [ ("spmv_coo", Kernel.spmv ~enc:(coo ()) ());
    ("spmv_csr", Kernel.spmv ~enc:(csr ()) ());
    ("spmv_csc", Kernel.spmv ~enc:(csc ()) ());
    ("spmv_dcsr", Kernel.spmv ~enc:(dcsr ()) ());
    ("spmm_csr", Kernel.spmm ~enc:(csr ()) ());
    ("ttv_csf", Kernel.ttv ~enc:(csf 3) ()) ]

let roundtrip () : int * int =
  List.fold_left
    (fun (ok, total) (kname, k) ->
      List.fold_left
        (fun (ok, total) (vname, v) ->
          let c = Pipeline.compile k v in
          let text = Printer.to_string c.Pipeline.fn in
          let good =
            match Parse.func_result text with
            | Error m ->
              Printf.eprintf "roundtrip %s_%s: parse error %s\n" kname vname m;
              false
            | Ok fn2 ->
              Printer.to_string fn2 = text
              && Parse.equal_func fn2 c.Pipeline.fn
          in
          ((if good then ok + 1 else ok), total + 1))
        (ok, total) variants)
    (0, 0) grid

let () =
  let engine = ref Exec.default_engine in
  let rec split acc = function
    | [] -> List.rev acc
    | "--engine" :: v :: rest ->
      (match Exec.engine_of_string v with
       | Some e -> engine := e
       | None ->
         Printf.eprintf "unknown engine %s (%s)\n" v Exec.valid_engines;
         exit 1);
      split acc rest
    | a :: rest -> split (a :: acc) rest
  in
  let pos = Array.of_list (split [] (List.tl (Array.to_list Sys.argv))) in
  let argi i default =
    if Array.length pos > i then int_of_string pos.(i) else default
  in
  let argf i default =
    if Array.length pos > i then float_of_string pos.(i) else default
  in
  let rows = argi 0 1000 in
  let band = argi 1 64 in
  let seed = argi 2 7 in
  let min_ratio = argf 3 1.0 in
  let engine = !engine in

  let rt_ok, rt_total = roundtrip () in

  let machine = Machine.gracemont_scaled () in
  let enc = Encoding.csr () in
  (* Banded rows give the long, uniform inner loops unrolling targets;
     sparse short-row shapes are covered (value-exactness only, no
     parity claim) by the differential tests. *)
  let coo = Generate.banded ~seed ~n:rows ~band () in
  let run ?pipeline variant =
    Driver.run
      (Driver.Cfg.make ~engine ?pipeline ~machine ~variant ())
      (Driver.Spmv enc) coo
  in
  (* unroll{f=4} per variant: bit-identical output, cycle ratio >= gate. *)
  let unroll_cases =
    List.filter (fun (n, _) -> n <> "aj") variants
    |> List.map (fun (vname, v) ->
           let base = run v in
           let spec = Pipeline.spec_of_variant v ^ ",unroll{f=4}" in
           let unrolled = run ~pipeline:spec v in
           let exact = base.Driver.out_f = unrolled.Driver.out_f in
           let ratio =
             float_of_int base.Driver.report.Exec.rp_cycles
             /. float_of_int unrolled.Driver.report.Exec.rp_cycles
           in
           (vname, exact, ratio))
  in
  (* slack{max=8} on asap: values must be bit-identical. *)
  let slack_exact, slack_ratio =
    let v = Pipeline.Asap Asap_prefetch.Asap.default in
    let base = run v in
    let spec = Pipeline.spec_of_variant v ^ ",slack{max=8}" in
    let r = run ~pipeline:spec v in
    ( base.Driver.out_f = r.Driver.out_f,
      float_of_int base.Driver.report.Exec.rp_cycles
      /. float_of_int r.Driver.report.Exec.rp_cycles )
  in

  let all_exact =
    List.for_all (fun (_, e, _) -> e) unroll_cases && slack_exact
  in
  (* The parity gate applies to the plain "sparsify,unroll{f=4}" pipeline;
     the asap ratio is reported but only held to value-exactness (the
     replicated bodies issue prefetches in bursts, which costs ~2% on
     this machine model). *)
  let gate_ratio =
    match List.find_opt (fun (n, _, _) -> n = "baseline") unroll_cases with
    | Some (_, _, r) -> r
    | None -> infinity
  in
  Printf.printf
    "{ \"bench\": \"pipeline\", \"engine\": \"%s\",\n\
    \  \"rows\": %d, \"nnz\": %d,\n\
    \  \"roundtrip_ok\": %d, \"roundtrip_total\": %d,\n\
    \  \"value_exact\": %b,\n"
    (Exec.engine_to_string engine)
    rows
    (Asap_tensor.Coo.nnz coo)
    rt_ok rt_total all_exact;
  List.iter
    (fun (vname, exact, ratio) ->
      Printf.printf
        "  \"unroll_f4_%s\": { \"value_exact\": %b, \"cycle_ratio\": %.4f },\n"
        vname exact ratio)
    unroll_cases;
  Printf.printf
    "  \"slack_m8_asap\": { \"value_exact\": %b, \"cycle_ratio\": %.4f },\n\
    \  \"unroll_gate_ratio\": %.4f, \"min_ratio_gate\": %.2f }\n"
    slack_exact slack_ratio gate_ratio min_ratio;
  let fail =
    rt_ok <> rt_total
    || (not all_exact)
    || (min_ratio > 0. && gate_ratio < min_ratio)
  in
  if fail then begin
    Printf.eprintf "pipeline gate FAILED\n";
    exit 1
  end
