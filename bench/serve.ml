(* Serving benchmark: replay a synthetic hot/cold Zipf mix through the
   scheduler with the compile/tune cache on and off, and report host
   wall-clock throughput plus the cached replay's hit rate.

   The cache's claim is host work avoided: with it, each distinct
   fingerprint sparsifies/compiles/tunes once; without it, every request
   rebuilds. The mix is Zipf-skewed, so the cached replay must be at
   least MIN_SPEEDUP times faster end to end (exit 1 otherwise). Virtual
   scheduling quantities (hit rate, latency percentiles) are identical
   either run to run — only the wall times vary with the host.

   Results go to stdout as JSON (tracked in BENCH_serve.json by
   tools/bench_smoke.sh @serve-smoke).

   Usage: serve.exe [--engine interp|compiled|bytecode]
                    [--tune-mode sweep|model|hybrid]
                    [n] [seed] [jobs] [min_speedup; 0 disables] *)

module Mix = Asap_serve.Mix
module Scheduler = Asap_serve.Scheduler
module Config = Asap_serve.Config
module Slo = Asap_serve.Slo
module Exec = Asap_sim.Exec
module Tuning = Asap_core.Tuning

let () =
  (* Pull out [--engine E] / [--tune-mode M]; what remains is the
     positional tail. *)
  let engine = ref Exec.default_engine in
  let tune_mode = ref Tuning.default_mode in
  let rec split acc = function
    | [] -> List.rev acc
    | "--engine" :: v :: rest ->
      (match Exec.engine_of_string v with
       | Some e -> engine := e
       | None ->
         Printf.eprintf "unknown engine %s (%s)\n" v Exec.valid_engines;
         exit 1);
      split acc rest
    | "--tune-mode" :: v :: rest ->
      (match Tuning.mode_of_string v with
       | Some m -> tune_mode := m
       | None ->
         Printf.eprintf "unknown tune mode %s (%s)\n" v Tuning.valid_modes;
         exit 1);
      split acc rest
    | a :: rest -> split (a :: acc) rest
  in
  let pos =
    Array.of_list (split [] (List.tl (Array.to_list Sys.argv)))
  in
  let argi i default =
    if Array.length pos > i then int_of_string pos.(i) else default
  in
  let argf i default =
    if Array.length pos > i then float_of_string pos.(i) else default
  in
  let n = argi 0 300 in
  let seed = argi 1 11 in
  let jobs = argi 2 4 in
  let min_speedup = argf 3 2.0 in
  let engine = !engine and tune_mode = !tune_mode in
  let profiles () =
    List.map
      (fun p -> { p with Mix.p_engine = engine; p_tune_mode = tune_mode })
      (Mix.default_profiles ())
  in
  let reqs = Mix.hot_cold ~seed ~n (profiles ()) in
  let replay ~cache_capacity =
    let config =
      Config.(default |> with_cache_capacity cache_capacity |> with_jobs jobs)
    in
    (* One warm-up pass faults in code and allocators, untimed. *)
    if cache_capacity > 0 then
      ignore (Scheduler.run config (Mix.hot_cold ~seed ~n:8 (profiles ())));
    let t0 = Unix.gettimeofday () in
    let rp = Scheduler.run config reqs in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, rp)
  in
  let cached_wall, cached =
    replay ~cache_capacity:Config.default.Config.cache_capacity
  in
  let uncached_wall, uncached = replay ~cache_capacity:0 in
  let cs = cached.Scheduler.rp_summary and us = uncached.Scheduler.rp_summary in
  let speedup = uncached_wall /. cached_wall in
  Printf.printf
    "{\n\
    \  \"mix\": \"hot_cold zipf n=%d seed=%d (10 profiles)\",\n\
    \  \"engine\": \"%s\",\n\
    \  \"tune_mode\": \"%s\",\n\
    \  \"host_cpus\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"cached\": { \"wall_s\": %.3f, \"req_per_s\": %.1f, \"builds\": %d,\n\
    \               \"hit_rate\": %.3f, \"p95_virtual_ms\": %.3f },\n\
    \  \"uncached\": { \"wall_s\": %.3f, \"req_per_s\": %.1f, \"builds\": %d },\n\
    \  \"serve_req_per_s\": %.1f,\n\
    \  \"cache_speedup\": %.2f\n\
     }\n"
    n seed
    (Exec.engine_to_string engine)
    (Tuning.mode_to_string tune_mode)
    (Domain.recommended_domain_count ())
    jobs cached_wall
    (float_of_int n /. cached_wall)
    cs.Slo.s_builds (Slo.hit_rate cs) cs.Slo.s_p95_ms uncached_wall
    (float_of_int n /. uncached_wall)
    us.Slo.s_builds
    (float_of_int n /. cached_wall)
    speedup;
  if min_speedup > 0. && speedup < min_speedup then begin
    Printf.eprintf
      "bench/serve: FAIL — cached replay only %.2fx faster than uncached \
       (need %.1fx)\n"
      speedup min_speedup;
    exit 1
  end
