(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md §4 for the experiment index).

   Usage:
     dune exec bench/main.exe                    # everything
     dune exec bench/main.exe -- fig6 fig11      # selected sections
     dune exec bench/main.exe -- --quick all     # reduced matrix set
     dune exec bench/main.exe -- --list          # section list
     dune exec bench/main.exe -- --engine interp # interpreter engine
     dune exec bench/main.exe -- --jobs 4 fig6   # parallel grid prewarm
                                                 # (clamped to host cores)

   All cells are deterministic, so --engine and --jobs never change a
   table: the engines are cycle-exact replicas of each other, and the
   parallel prewarm merges results on the main domain in input order.

   Absolute numbers come from the simulated, capacity-scaled Gracemont
   machine; the claims under test are the *shapes*: who wins, by what
   factor, and where the crossovers sit (EXPERIMENTS.md records
   paper-vs-measured for each artefact). *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Storage = Asap_tensor.Storage
module Kernel = Asap_lang.Kernel
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Hierarchy = Asap_sim.Hierarchy
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Suite = Asap_workloads.Suite
module Generate = Asap_workloads.Generate
module Summary = Asap_metrics.Summary
module Regress = Asap_metrics.Regress
module Roofline = Asap_metrics.Roofline
open Harness

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2                                                      *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1: system configuration";
  print_endline (Machine.table1 (Machine.gracemont ()));
  print_newline ();
  print_endline
    "Evaluation machine (cache capacities scaled to match the synthetic";
  print_endline "collection's footprints; all other parameters identical):";
  print_newline ();
  print_endline (Machine.table1 (Machine.gracemont_scaled ()))

let table2 () =
  header "Table 2: hardware prefetchers on Alder Lake E-cores";
  subheader "default (out-of-box) state";
  print_endline (Machine.table2 Machine.hw_default);
  subheader "optimized setting for SpMV (L1 NLP and L2 AMP disabled)";
  print_endline (Machine.table2 Machine.hw_optimized);
  subheader "optimized setting for SpMM (L2 AMP kept for 2-D strides)";
  print_endline (Machine.table2 Machine.hw_optimized_spmm)

(* ------------------------------------------------------------------ *)
(* Listings: Figs. 1/3, 5 and 9                                        *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header "Figs. 1 & 3: SpMV and its sparsified code per format";
  print_endline (Kernel.to_linalg_string (Kernel.spmv ()));
  List.iter
    (fun enc ->
      subheader (Printf.sprintf "sparsified SpMV, %s" enc.Encoding.name);
      print_string
        (Pipeline.listing (Pipeline.compile (Kernel.spmv ~enc ()) Pipeline.Baseline)))
    [ Encoding.coo (); Encoding.csr (); Encoding.dcsr () ]

let fig5 () =
  header "Fig. 5: ASaP prefetch generation for c[Bj_crd[jj]] (CSR SpMV)";
  let c =
    Pipeline.compile (Kernel.spmv ~enc:(Encoding.csr ()) ())
      (Pipeline.Asap Asap.default)
  in
  print_string (Pipeline.listing c);
  Printf.printf "\nsites instrumented: %d\n" c.Pipeline.n_prefetch_sites

let fig9 () =
  header "Fig. 9: SpMM with outer-loop prefetching (CSR)";
  let c =
    Pipeline.compile (Kernel.spmm ())
      (Pipeline.Asap { Asap.default with Asap.strategy = Asap.Outer_only })
  in
  print_string (Pipeline.listing c);
  let aj = Pipeline.compile (Kernel.spmm ()) (Pipeline.Ainsworth_jones Aj.default) in
  Printf.printf
    "\nASaP outer-loop sites: %d; Ainsworth & Jones sites: %d (the prior\n\
     artifact generates no prefetches for SpMM, matching §5.3).\n"
    c.Pipeline.n_prefetch_sites aj.Pipeline.n_prefetch_sites

(* ------------------------------------------------------------------ *)
(* Fig. 6: SpMV speedup vs L2 MPKI                                     *)
(* ------------------------------------------------------------------ *)

let fig6_cells () =
  List.concat_map
    (fun e -> [ cell `Spmv e Base Optimized; cell `Spmv e A Optimized ])
    (spmv_entries ())

let fig6 () =
  header "Fig. 6: SpMV speedup (ASaP vs baseline) versus baseline L2 MPKI";
  prewarm (fig6_cells ());
  Printf.printf "%-22s %-10s %9s %9s %9s\n" "matrix" "group" "nnz(k)"
    "L2 MPKI" "speedup";
  let points = ref [] in
  List.iter
    (fun e ->
      let base = measure `Spmv e Base Optimized in
      let asap = measure `Spmv e A Optimized in
      let speedup = asap.m_throughput /. base.m_throughput in
      points := (base.m_mpki, speedup) :: !points;
      Printf.printf "%-22s %-10s %9d %9.2f %8.2fx\n%!" e.Suite.name
        e.Suite.group (base.m_nnz / 1000) base.m_mpki speedup)
    (spmv_entries ());
  let pts = Array.of_list !points in
  let f = Regress.fit pts in
  Printf.printf "\nlinear fit: %s\n" (Regress.to_string f);
  (* The empirical break-even: the highest-MPKI point that still loses and
     the lowest-MPKI point that already wins bracket the crossover the
     paper puts near 4 MPKI. *)
  let lose_hi =
    Array.fold_left (fun m (x, y) -> if y < 1. then Float.max m x else m) 0.
      pts
  in
  let win_lo =
    Array.fold_left
      (fun m (x, y) -> if y > 1. then Float.min m x else m)
      infinity pts
  in
  Printf.printf
    "empirical break-even: slowdowns up to %.1f MPKI, wins from %.1f MPKI \
     (paper: crossover ~4)\n"
    lose_hi win_lo;
  let lo =
    Array.fold_left (fun m (x, y) -> if x < 4. then Float.min m y else m)
      infinity pts
  in
  let hi = Array.fold_left (fun m (_, y) -> Float.max m y) 0. pts in
  Printf.printf
    "min speedup among compute-bound points: %.2fx (paper: >= ~0.9x)\n"
    (if lo = infinity then Float.nan else lo);
  Printf.printf "max speedup: %.2fx (paper: > 2x near 50 MPKI)\n" hi

(* ------------------------------------------------------------------ *)
(* Fig. 7: SpMV EWS by matrix group x prefetcher configuration          *)
(* ------------------------------------------------------------------ *)

let spmv_group_rows series =
  prewarm
    (List.concat_map
       (fun e -> List.map (fun (_, vk, hw) -> cell `Spmv e vk hw) series)
       (spmv_entries ()));
  List.map
    (fun e ->
      let tps =
        List.map
          (fun (label, vk, hw) ->
            (label, (measure `Spmv e vk hw).m_throughput))
          series
      in
      let r = (e.Suite.group, tps) in
      drop_matrix e.Suite.name;
      r)
    (spmv_entries ())

let fig7 () =
  header "Fig. 7: SpMV equal-work harmonic-mean speedup by matrix group";
  print_endline
    "(all speedups relative to baseline-default; paper: ASaP ~1.42x on\n\
     Selected with optimized prefetchers, regression ~0.8x on Others)\n";
  let series =
    [ ("base-default", Base, Default); ("base-opt", Base, Optimized);
      ("asap-default", A, Default); ("asap-opt", A, Optimized) ]
  in
  let rows = spmv_group_rows series in
  group_table ~groups:Suite.groups
    ~series:(List.map (fun (l, _, _) -> l) series)
    ~rows

(* ------------------------------------------------------------------ *)
(* Fig. 8: SpMM speedup vs L2 MPKI                                      *)
(* ------------------------------------------------------------------ *)

let fig8_cells () =
  List.concat_map
    (fun e -> [ cell `Spmm e Base Optimized; cell `Spmm e A Optimized ])
    (spmm_entries ())

let fig8 () =
  header "Fig. 8: SpMM speedup (ASaP vs baseline) versus baseline L2 MPKI";
  prewarm (fig8_cells ());
  Printf.printf "%-22s %-10s %9s %9s %9s\n" "matrix" "group" "nnz(k)"
    "L2 MPKI" "speedup";
  let points = ref [] in
  List.iter
    (fun e ->
      let base = measure `Spmm e Base Optimized in
      let asap = measure `Spmm e A Optimized in
      let speedup = asap.m_throughput /. base.m_throughput in
      points := (base.m_mpki, speedup) :: !points;
      Printf.printf "%-22s %-10s %9d %9.2f %8.2fx\n%!" e.Suite.name
        e.Suite.group (base.m_nnz / 1000) base.m_mpki speedup)
    (spmm_entries ());
  let f = Regress.fit (Array.of_list !points) in
  Printf.printf "\nlinear fit: %s\n" (Regress.to_string f);
  print_endline "paper: y = 0.706x + 0.995, R^2 = 0.776 — a much steeper";
  print_endline "slope than SpMV's, with an intercept near 1.0 (negligible";
  print_endline "overhead): outer-loop prefetching amortises its instructions."

(* ------------------------------------------------------------------ *)
(* Fig. 10: SpMM EWS by group                                           *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  header "Fig. 10: SpMM equal-work harmonic-mean speedup by matrix group";
  print_endline
    "(paper: 1.28x on unstructured groups, 1.02x on the rest; prefetcher\n\
     configuration gains are negligible for SpMM)\n";
  prewarm (fig8_cells ());
  let rows =
    List.map
      (fun e ->
        let tps =
          [ ("base-opt", (measure `Spmm e Base Optimized).m_throughput);
            ("asap-opt", (measure `Spmm e A Optimized).m_throughput) ]
        in
        let r = (e.Suite.group, tps) in
        drop_matrix e.Suite.name;
        r)
      (spmm_entries ())
  in
  group_table ~groups:Suite.groups ~series:[ "base-opt"; "asap-opt" ] ~rows

(* ------------------------------------------------------------------ *)
(* Fig. 11: ASaP vs Ainsworth & Jones (SpMV)                            *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  header "Fig. 11: SpMV EWS — ASaP vs Ainsworth & Jones by matrix group";
  print_endline
    "(paper: ASaP 1.38x vs A&J ~1.02x on Selected under optimized\n\
     prefetchers; A&J loses coverage when segment lengths approach the\n\
     prefetch distance)\n";
  let series =
    [ ("base-opt", Base, Optimized); ("aj-default", Jones, Default);
      ("aj-opt", Jones, Optimized); ("asap-default", A, Default);
      ("asap-opt", A, Optimized) ]
  in
  let rows = spmv_group_rows series in
  group_table ~groups:Suite.groups
    ~series:(List.map (fun (l, _, _) -> l) series)
    ~rows;
  (* §5.3 mechanism: sweep the mean segment length against the fixed
     prefetch distance (45). *)
  subheader "segment-length sweep (semantic vs segment-local bound, §3.2.2)";
  Printf.printf "%-10s %12s %12s %12s\n" "mean deg" "baseline" "segment-loc"
    "semantic";
  (* The column count (= dense-operand footprint) is held fixed and
     memory-bound while the mean row length sweeps across the prefetch
     distance; only the segment-length effect remains. *)
  let nnz_target = if !quick then 400_000 else 800_000 in
  let cols = if !quick then 200_000 else 400_000 in
  List.iter
    (fun deg ->
      let rows_n = nnz_target / deg in
      let coo =
        Generate.uniform ~seed:(9000 + deg) ~rows:rows_n ~cols
          ~nnz:nnz_target ()
      in
      let machine = machine_of ~kernel:`Spmv ~threads:1 Optimized in
      let enc = Encoding.csr () in
      let run variant = Driver.spmv machine variant enc coo in
      let base = run Pipeline.Baseline in
      let seg =
        run (Pipeline.Asap
               { Asap.default with Asap.bound_mode = Asap.Segment_local;
                 distance = eval_distance })
      in
      let sem =
        run (Pipeline.Asap { Asap.default with Asap.distance = eval_distance })
      in
      let tp r = Driver.throughput r in
      Printf.printf "%-10d %12.0f %11.2fx %11.2fx\n%!" deg (tp base)
        (tp seg /. tp base) (tp sem /. tp base))
    (if !quick then [ 4; 32 ] else [ 2; 4; 8; 16; 32; 64; 128 ])

(* ------------------------------------------------------------------ *)
(* Fig. 12: cache-aware roofline, GAP-twitter, multi-threaded           *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  header "Fig. 12: roofline — SpMV on GAP-twitter, 1-8 threads";
  let e = Suite.find "GAP-twitter" in
  let threads = if !quick then [ 1; 2; 4 ] else [ 1; 2; 3; 4; 6; 8 ] in
  prewarm
    (List.concat_map
       (fun t ->
         [ cell ~threads:t `Spmv e Base Optimized;
           cell ~threads:t `Spmv e A Optimized ])
       threads);
  Printf.printf "%-8s %14s %14s %9s %11s %11s\n" "threads" "base nnz/ms"
    "asap nnz/ms" "gain" "AI(f/B)" "GFLOP/s";
  List.iter
    (fun t ->
      let base = measure ~threads:t `Spmv e Base Optimized in
      let asap = measure ~threads:t `Spmv e A Optimized in
      let ai = Exec.arithmetic_intensity asap.m_report in
      let gf = Exec.gflops asap.m_report in
      Printf.printf "%-8d %14.0f %14.0f %8.0f%% %11.4f %11.3f\n%!" t
        base.m_throughput asap.m_throughput
        (100. *. (asap.m_throughput /. base.m_throughput -. 1.))
        ai gf)
    threads;
  let m = Machine.gracemont_scaled () in
  let roof =
    Roofline.of_machine ~freq_ghz:m.Machine.freq_ghz ~width:m.Machine.width
      ~line_bytes:m.Machine.line_bytes ~dram_gap:m.Machine.dram_gap
      ~lat_l2:m.Machine.lat_l2 ~lat_l3:m.Machine.lat_l3 ~threads:1 ()
  in
  Printf.printf "\nroofs (1 thread): peak %.2f GFLOP/s; " roof.Roofline.peak_gflops;
  List.iter
    (fun (c : Roofline.ceiling) ->
      Printf.printf "%s %.1f GB/s  " c.Roofline.c_name c.Roofline.c_gbps)
    roof.Roofline.ceilings;
  print_newline ();
  print_endline
    "(paper: ASaP consistently above baseline with peak gain ~28% at 3\n\
     threads; gains shrink as DRAM bandwidth saturates, and the ASaP\n\
     points sit slightly left — more memory traffic — but higher)"

(* ------------------------------------------------------------------ *)
(* Ablations (§5 design choices; DESIGN.md §5)                          *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header "Ablations: ASaP design choices on GAP-twitter SpMV";
  let e = Suite.find "GAP-twitter" in
  let coo = matrix e in
  let machine = machine_of ~kernel:`Spmv ~threads:1 Optimized in
  let enc = Encoding.csr () in
  let tp variant =
    Driver.throughput (Driver.spmv machine variant enc coo)
  in
  let base = tp Pipeline.Baseline in

  subheader "prefetch distance (§3.2.3: tunable; paper fixes 45)";
  Printf.printf "%-10s %12s\n" "distance" "speedup";
  List.iter
    (fun d ->
      let s = tp (Pipeline.Asap { Asap.default with Asap.distance = d }) in
      Printf.printf "%-10d %11.2fx\n%!" d (s /. base))
    (if !quick then [ 8; 45 ] else [ 4; 8; 16; 32; 45; 64; 128 ]);

  subheader "step-1 crd prefetch (§3.2.1: omitting it degraded performance)";
  let with1 =
    tp (Pipeline.Asap { Asap.default with Asap.distance = eval_distance })
  in
  let without1 =
    tp (Pipeline.Asap
          { Asap.default with Asap.step1 = false; distance = eval_distance })
  in
  Printf.printf "with step 1:    %.2fx\nwithout step 1: %.2fx\n"
    (with1 /. base) (without1 /. base);

  subheader "bound mode (§3.2.2: the paper's core distinction)";
  let seg =
    tp (Pipeline.Asap
          { Asap.default with Asap.bound_mode = Asap.Segment_local;
            distance = eval_distance })
  in
  Printf.printf "semantic bound:      %.2fx\nsegment-local bound: %.2fx\n"
    (with1 /. base) (seg /. base);

  subheader "hardware prefetcher sensitivity (one toggle at a time, ASaP)";
  let toggle label hw =
    let m = Machine.gracemont_scaled ~hw () in
    let t =
      Driver.throughput
        (Driver.spmv m
           (Pipeline.Asap { Asap.default with Asap.distance = eval_distance })
           enc coo)
    in
    Printf.printf "%-34s %12.0f nnz/ms\n%!" label t
  in
  toggle "optimized (NLP, AMP off)" Machine.hw_optimized;
  toggle "+ L1 NLP on" { Machine.hw_optimized with Machine.l1_nlp = true };
  toggle "+ L2 AMP on" { Machine.hw_optimized with Machine.l2_amp = true };
  toggle "- L1 IPP off" { Machine.hw_optimized with Machine.l1_ipp = false };
  toggle "- MLC streamer off"
    { Machine.hw_optimized with Machine.mlc_streamer = false };
  drop_matrix e.Suite.name;

  subheader "SpMM strategy (innermost- vs outer-loop placement, §5.2)";
  let spmm_e = Suite.find "GAP-twitter" in
  let coo = matrix spmm_e in
  let m = machine_of ~kernel:`Spmm ~threads:1 Optimized in
  let tpm variant = Driver.throughput (Driver.spmm m variant enc coo) in
  let b = tpm Pipeline.Baseline in
  let outer =
    tpm (Pipeline.Asap
           { Asap.default with Asap.strategy = Asap.Outer_only;
             distance = eval_distance })
  in
  let both =
    tpm (Pipeline.Asap { Asap.default with Asap.distance = eval_distance })
  in
  Printf.printf "baseline:            %12.0f nnz/ms\n" b;
  Printf.printf "outer-loop only:     %11.2fx\n" (outer /. b);
  Printf.printf "both (auto):         %11.2fx\n" (both /. b);
  drop_matrix spmm_e.Suite.name;

  subheader "rank-3 CSF tensor-times-vector (the general case of §3.2.2)";
  let t3 =
    Generate.tensor3 ~seed:12
      ~dims:[| 400; 500; 200_000 |]
      ~nnz:(if !quick then 300_000 else 800_000) ()
  in
  let mt = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
  let run variant = Driver.throughput (Driver.ttv mt variant t3) in
  let bt = run Pipeline.Baseline in
  let at =
    run (Pipeline.Asap { Asap.default with Asap.distance = eval_distance })
  in
  let jt =
    run (Pipeline.Ainsworth_jones { Aj.default with Aj.distance = eval_distance })
  in
  Printf.printf
    "baseline %.0f nnz/ms; asap %.2fx; ainsworth-jones %.2fx\n\
     (three sites, bound chain Bi_pos -> Bj_pos -> Bk_pos)\n"
    bt (at /. bt) (jt /. bt)

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel): wall-clock of the harness itself        *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Micro-benchmarks (Bechamel, wall clock of the OCaml machinery)";
  let open Bechamel in
  let open Toolkit in
  let coo =
    Generate.power_law ~seed:77 ~rows:2000 ~cols:2000 ~avg_deg:8 ~alpha:2.0 ()
  in
  let enc = Encoding.csr () in
  let st = Storage.pack enc coo in
  let machine = Machine.gracemont_scaled () in
  let mk name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"asap"
      [ mk "t2-pack-csr" (fun () -> ignore (Storage.pack enc coo));
        mk "f3-sparsify-spmv" (fun () ->
            ignore (Pipeline.compile (Kernel.spmv ~enc ()) Pipeline.Baseline));
        mk "f5-asap-compile" (fun () ->
            ignore
              (Pipeline.compile (Kernel.spmv ~enc ())
                 (Pipeline.Asap Asap.default)));
        mk "f9-aj-pass" (fun () ->
            ignore
              (Pipeline.compile (Kernel.spmv ~enc ())
                 (Pipeline.Ainsworth_jones Aj.default)));
        mk "f6-spmv-cell" (fun () ->
            ignore (Driver.spmv machine Pipeline.Baseline enc coo));
        mk "f8-spmm-cell" (fun () ->
            ignore (Driver.spmm machine Pipeline.Baseline enc ~n:8 coo));
        mk "t1-storage-iter" (fun () ->
            let n = ref 0 in
            Storage.iter (fun _ _ -> incr n) st) ]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name r ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  Printf.printf "%-28s %16s\n" "benchmark" "ns/run";
  List.iter
    (fun (name, est) -> Printf.printf "%-28s %16.0f\n" name est)
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)

let sections : (string * (unit -> unit)) list =
  [ ("table1", table1); ("table2", table2); ("fig3", fig3); ("fig5", fig5);
    ("fig6", fig6); ("fig7", fig7); ("fig8", fig8); ("fig9", fig9);
    ("fig10", fig10); ("fig11", fig11); ("fig12", fig12);
    ("ablation", ablation); ("micro", micro) ]

let usage () =
  prerr_endline
    ("usage: main.exe [--quick] [--no-log] [--list] [--engine "
     ^ Exec.valid_engines ^ "] [--jobs N] [--records FILE] [sections...]");
  exit 1

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
      quick := true;
      parse acc rest
    | "--no-log" :: rest ->
      verbose := false;
      parse acc rest
    | "--list" :: _ ->
      List.iter (fun (n, _) -> print_endline n) sections;
      exit 0
    | "--engine" :: v :: rest ->
      (match Exec.engine_of_string v with
       | Some e -> engine := e
       | None ->
         Printf.eprintf "unknown engine %s (%s)\n" v Exec.valid_engines;
         exit 1);
      parse acc rest
    | ("--jobs" | "-j") :: v :: rest ->
      (match int_of_string_opt v with
       | Some n when n >= 1 ->
         (* Oversubscribing domains buys nothing — every extra domain
            joins OCaml's stop-the-world minor-GC barrier — so clamp to
            the host's parallelism. Tables are identical either way. *)
         jobs := min n (max 1 (Domain.recommended_domain_count ()))
       | _ ->
         Printf.eprintf "bad job count %s\n" v;
         exit 1);
      parse acc rest
    | "--records" :: path :: rest ->
      records := Some (Asap_obs.Run_record.open_path path);
      parse acc rest
    | ("--engine" | "--jobs" | "-j" | "--records") :: [] -> usage ()
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage ()
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let chosen =
    match args with
    | [] | [ "all" ] -> List.map fst sections
    | picks ->
      List.iter
        (fun p ->
          if not (List.mem_assoc p sections) then begin
            Printf.eprintf "unknown section %s (try --list)\n" p;
            exit 1
          end)
        picks;
      picks
  in
  List.iter (fun name -> (List.assoc name sections) ()) chosen;
  let cells = Hashtbl.length run_cache in
  if cells > 0 then begin
    let minstr =
      Hashtbl.fold
        (fun _ m acc -> acc + Exec.Report.instructions m.m_report)
        run_cache 0
      / 1_000_000
    in
    log "grid: %d cells, %d Minstr simulated (engine %s, %d jobs)" cells
      minstr
      (Exec.engine_to_string !engine)
      !jobs
  end;
  (match !records with
   | Some rr ->
     log "records: wrote %d JSONL run records" (Asap_obs.Run_record.count rr);
     Asap_obs.Run_record.close rr;
     records := None
   | None -> ())
