(* Cold-start tuning benchmark: the cost model against the candidate
   sweep.

   Three measurements over an all-[`Tuned] request suite:

   - decision throughput (host wall): how many tuning decisions per
     second each mode makes on pre-packed matrices. This is the quantity
     the cost model exists to improve — the sweep runs
     O(candidates) sliced simulations per decision, the model one O(nnz)
     feature pass — and the gate [min_ratio] (default 3x) applies here.
   - uncached replay (host wall): full cold builds
     (pack + decide + compile + cold run) per second under each mode.
     Reported for honesty, NOT gated: packing and the cold execution
     dominate both modes, so the end-to-end ratio is structurally small
     even when decisions get orders of magnitude cheaper.
   - virtual decision cost and agreement: summed virtual tune cycles per
     mode, and hybrid-mode model-vs-sweep agreement with the profiled
     cycle regret on disagreements.

   Results go to stdout as JSON (tracked in BENCH_tune.json by
   tools/serve_smoke.sh @serve-smoke). [--records FILE] writes the
   model-mode replay's per-request records as JSONL, followed by one
   line per mode with the replay's counter-registry snapshot diff
   (includes the serve.tune.* and tune.model.* counters).

   Usage: tune.exe [--engine interp|compiled|bytecode] [--records FILE]
                   [n] [seed] [jobs] [min_ratio; 0 disables] *)

module Coo = Asap_tensor.Coo
module Storage = Asap_tensor.Storage
module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Tuning = Asap_core.Tuning
module Select = Asap_model.Select
module Generate = Asap_workloads.Generate
module Mix = Asap_serve.Mix
module Scheduler = Asap_serve.Scheduler
module Slo = Asap_serve.Slo
module Request = Asap_serve.Request
module Registry = Asap_obs.Registry
module Jsonu = Asap_obs.Jsonu

(* Rank-2 spread mirroring the serve mix: irregular matrices where
   prefetching pays, structured ones where the tuner rolls back. *)
let specs =
  [ "powerlaw:3000,6"; "heavytail:2500,10000,10"; "uniform:2500,12000";
    "banded:2500,8"; "stencil2d:50"; "road:2000,3"; "powerlaw:400,5";
    "uniform:300,1200"; "banded:300,4" ]

let () =
  let engine = ref Exec.default_engine in
  let records = ref None in
  let rec split acc = function
    | [] -> List.rev acc
    | "--engine" :: v :: rest ->
      (match Exec.engine_of_string v with
       | Some e -> engine := e
       | None ->
         Printf.eprintf "unknown engine %s (%s)\n" v Exec.valid_engines;
         exit 1);
      split acc rest
    | "--records" :: v :: rest ->
      records := Some v;
      split acc rest
    | a :: rest -> split (a :: acc) rest
  in
  let pos = Array.of_list (split [] (List.tl (Array.to_list Sys.argv))) in
  let argi i default =
    if Array.length pos > i then int_of_string pos.(i) else default
  in
  let argf i default =
    if Array.length pos > i then float_of_string pos.(i) else default
  in
  let n = argi 0 120 in
  let seed = argi 1 11 in
  let jobs = argi 2 4 in
  let min_ratio = argf 3 3.0 in
  let engine = !engine in
  let machine = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
  let enc = Encoding.csr () in

  (* --- decision throughput (host wall, pre-packed matrices) ---------- *)
  let mats =
    List.map
      (fun spec ->
        match Generate.of_spec spec with
        | Ok coo -> (spec, coo, Storage.pack enc coo)
        | Error e -> Printf.eprintf "bench/tune: %s\n" e; exit 1)
      specs
  in
  let reps = max 1 (n / List.length specs) in
  let time_decisions mode =
    let t0 = Unix.gettimeofday () in
    let cycles = ref 0 in
    for _ = 1 to reps do
      List.iter
        (fun (_, coo, st) ->
          let d = Select.decide ~engine ~st ~mode machine enc coo in
          cycles := !cycles + d.Select.d_tune_cycles)
        mats
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let total = reps * List.length mats in
    (float_of_int total /. dt, !cycles / reps)
  in
  (* Warm-up: fault in code paths untimed. *)
  ignore (time_decisions `Model);
  let sweep_per_s, sweep_cycles = time_decisions `Sweep in
  let model_per_s, model_cycles = time_decisions `Model in
  let decision_ratio = model_per_s /. sweep_per_s in
  let virtual_ratio = float_of_int sweep_cycles /. float_of_int model_cycles in

  (* --- hybrid agreement ---------------------------------------------- *)
  let agree = ref 0 and delta_sum = ref 0 in
  List.iter
    (fun (_, coo, st) ->
      let d = Select.decide ~engine ~st ~mode:`Hybrid machine enc coo in
      (match d.Select.d_agree with
       | Some true -> incr agree
       | _ -> ());
      match d.Select.d_delta_cycles with
      | Some dc -> delta_sum := !delta_sum + abs dc
      | None -> ())
    mats;
  let nmat = List.length mats in
  let agree_rate = float_of_int !agree /. float_of_int nmat in

  (* --- uncached replay (full cold builds) ----------------------------- *)
  let tuned_profiles mode =
    List.map
      (fun spec -> Mix.profile ~variant:`Tuned ~engine ~tune_mode:mode spec)
      specs
  in
  let replay mode =
    let reqs = Mix.hot_cold ~seed ~n (tuned_profiles mode) in
    let config =
      Asap_serve.Config.(
        default |> with_cache_capacity 0 |> with_jobs jobs)
    in
    let t0 = Unix.gettimeofday () in
    let rp = Scheduler.run config reqs in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, rp)
  in
  let sweep_wall, sweep_rp = replay `Sweep in
  let model_wall, model_rp = replay `Model in
  let full_build_ratio = sweep_wall /. model_wall in

  (match !records with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Array.iter
       (fun r -> output_string oc (Scheduler.record_to_line r ^ "\n"))
       model_rp.Scheduler.rp_records;
     (* One snapshot-diff line per mode: every counter the replay moved,
        including serve.tune.* and tune.model.*. *)
     List.iter
       (fun (mode, rp) ->
         let diff =
           Registry.diff
             ~before:(Registry.create ())
             ~after:(Registry.snapshot rp.Scheduler.rp_registry)
         in
         let obj =
           Jsonu.Obj
             [ ("mode", Jsonu.Str (Tuning.mode_to_string mode));
               ("counters",
                Jsonu.Obj (List.map (fun (k, v) -> (k, Jsonu.Int v)) diff)) ]
         in
         output_string oc (Jsonu.to_string obj ^ "\n"))
       [ (`Sweep, sweep_rp); (`Model, model_rp) ];
     close_out oc);

  let ss = sweep_rp.Scheduler.rp_summary
  and ms = model_rp.Scheduler.rp_summary in
  Printf.printf
    "{\n\
    \  \"suite\": \"all-tuned hot_cold zipf n=%d seed=%d (%d matrices)\",\n\
    \  \"engine\": \"%s\",\n\
    \  \"jobs\": %d,\n\
    \  \"decision\": { \"sweep_per_s\": %.1f, \"model_per_s\": %.1f,\n\
    \                 \"ratio\": %.2f },\n\
    \  \"virtual_tune_cycles\": { \"sweep\": %d, \"model\": %d,\n\
    \                            \"ratio\": %.1f },\n\
    \  \"uncached_replay\": { \"sweep\": { \"wall_s\": %.3f, \"builds\": %d },\n\
    \                        \"model\": { \"wall_s\": %.3f, \"builds\": %d },\n\
    \                        \"full_build_ratio\": %.2f },\n\
    \  \"agreement\": { \"matrices\": %d, \"agree\": %d, \"rate\": %.3f,\n\
    \                  \"abs_delta_cycles\": %d }\n\
     }\n"
    n seed nmat
    (Exec.engine_to_string engine)
    jobs sweep_per_s model_per_s decision_ratio sweep_cycles model_cycles
    virtual_ratio sweep_wall ss.Slo.s_builds model_wall ms.Slo.s_builds
    full_build_ratio nmat !agree agree_rate !delta_sum;
  if min_ratio > 0. && decision_ratio < min_ratio then begin
    Printf.eprintf
      "bench/tune: FAIL — model-mode decisions only %.2fx faster than \
       sweep (need %.1fx)\n"
      decision_ratio min_ratio;
    exit 1
  end
