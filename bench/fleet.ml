(* Fleet benchmark: the sharded serving fleet against a single shard on
   the same multi-tenant Zipf trace, plus the determinism gate that
   justifies running the build pass host-parallel at all.

   Two gates, both over *virtual* quantities (deterministic replay
   properties, not host measurements):

   - determinism: the fleet replay's per-request records must be
     byte-identical between [jobs] = 1 and [jobs] = N. Host domains
     only accelerate the build pass; if they ever leak into the
     records, this trips.
   - scaling: fleet virtual throughput (served requests per virtual
     makespan, [Slo.s_throughput_rps]) must be at least [min_ratio]
     (default 2x) the single-shard replay's on a trace dense enough to
     saturate one shard's servers.

   Results go to stdout as JSON (tracked in BENCH_fleet.json by
   tools/serve_smoke.sh @serve-smoke).

   With [--soak N] (N defaults to 1_000_000 when omitted) the fleet
   additionally replays an N-request Zipf trace and reports the
   outcome as an ungated "soak" row: the point is surviving the volume
   with a sane summary (virtual throughput, shed rate, p99), not a
   ratio gate — soak cost scales with N and would make the gate a
   host-speed lottery.

   Usage: fleet.exe [--engine interp|compiled|bytecode] [--shards K]
                    [--soak [N]] [n] [seed] [jobs]
                    [min_ratio; 0 disables] *)

module Mix = Asap_serve.Mix
module Scheduler = Asap_serve.Scheduler
module Config = Asap_serve.Config
module Slo = Asap_serve.Slo
module Registry = Asap_obs.Registry
module Exec = Asap_sim.Exec

let () =
  let engine = ref Exec.default_engine in
  let shards = ref 4 in
  let soak = ref 0 in
  let rec split acc = function
    | [] -> List.rev acc
    | "--engine" :: v :: rest ->
      (match Exec.engine_of_string v with
       | Some e -> engine := e
       | None ->
         Printf.eprintf "unknown engine %s (%s)\n" v Exec.valid_engines;
         exit 1);
      split acc rest
    | "--shards" :: v :: rest ->
      (match int_of_string_opt v with
       | Some k when k >= 1 -> shards := k
       | _ -> Printf.eprintf "bad --shards %s\n" v; exit 1);
      split acc rest
    | "--soak" :: v :: rest when int_of_string_opt v <> None ->
      (match int_of_string_opt v with
       | Some k when k >= 0 -> soak := k (* 0 disables *)
       | _ -> Printf.eprintf "bad --soak %s\n" v; exit 1);
      split acc rest
    | "--soak" :: rest -> soak := 1_000_000; split acc rest
    | a :: rest -> split (a :: acc) rest
  in
  let pos = Array.of_list (split [] (List.tl (Array.to_list Sys.argv))) in
  let argi i default =
    if Array.length pos > i then int_of_string pos.(i) else default
  in
  let argf i default =
    if Array.length pos > i then float_of_string pos.(i) else default
  in
  let n = argi 0 240 in
  let seed = argi 1 11 in
  let jobs = argi 2 4 in
  let min_ratio = argf 3 2.0 in
  let engine = !engine and shards = !shards and soak = !soak in
  let profiles =
    List.map
      (fun p -> { p with Mix.p_engine = engine })
      (Mix.default_profiles ())
  in
  (* Arrivals dense enough (5 us mean gap) that one shard's two servers
     queue-saturate; the fleet's [shards * servers] drain the same trace
     in a fraction of the virtual makespan. *)
  let reqs =
    Mix.hot_cold ~mean_gap_ms:0.005
      ~tenants:[ ("alpha", 3.); ("beta", 1.); ("gamma", 1.) ]
      ~seed ~n profiles
  in
  let replay ~shards ~jobs =
    let config =
      Config.(default |> with_shards shards |> with_jobs jobs)
    in
    let t0 = Unix.gettimeofday () in
    let rp = Scheduler.run config reqs in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, rp)
  in
  let lines rp =
    String.concat "\n"
      (Array.to_list (Array.map Scheduler.record_to_line rp.Scheduler.rp_records))
  in
  let single_wall, single = replay ~shards:1 ~jobs in
  let fleet_wall, fleet = replay ~shards ~jobs in
  let _, fleet_seq = replay ~shards ~jobs:1 in
  let identical = String.equal (lines fleet) (lines fleet_seq) in
  let ss = single.Scheduler.rp_summary and fs = fleet.Scheduler.rp_summary in
  let ratio = fs.Slo.s_throughput_rps /. ss.Slo.s_throughput_rps in
  let steals =
    Option.value ~default:0
      (Registry.get fleet.Scheduler.rp_registry "serve.steal.count")
  in
  (* Ungated soak: same fleet config on an N-request trace. Reported,
     never gated — see the header comment. *)
  let soak_json =
    if soak = 0 then ""
    else begin
      let sreqs =
        Mix.hot_cold ~mean_gap_ms:0.005
          ~tenants:[ ("alpha", 3.); ("beta", 1.); ("gamma", 1.) ]
          ~seed:(seed + 1) ~n:soak profiles
      in
      let t0 = Unix.gettimeofday () in
      let rp =
        Scheduler.run
          Config.(default |> with_shards shards |> with_jobs jobs)
          sreqs
      in
      let dt = Unix.gettimeofday () -. t0 in
      let s = rp.Scheduler.rp_summary in
      Printf.sprintf
        "  \"soak\": { \"requests\": %d, \"wall_s\": %.3f, \"served\": %d,\n\
        \            \"shed\": %d, \"hits\": %d, \"builds\": %d,\n\
        \            \"p99_ms\": %s, \"makespan_ms\": %.3f,\n\
        \            \"virtual_rps\": %.1f },\n"
        soak dt
        (s.Slo.s_ok + s.Slo.s_degraded)
        s.Slo.s_shed s.Slo.s_hits s.Slo.s_builds
        (match s.Slo.s_p99_ms with
         | Some p -> Printf.sprintf "%.3f" p
         | None -> "null")
        s.Slo.s_makespan_ms s.Slo.s_throughput_rps
    end
  in
  Printf.printf
    "{\n\
    \  \"mix\": \"hot_cold zipf n=%d seed=%d, 3 tenants, 5us mean gap\",\n\
    \  \"engine\": \"%s\",\n\
    \  \"jobs\": %d,\n\
    \  \"single\": { \"shards\": 1, \"wall_s\": %.3f, \"served\": %d,\n\
    \               \"shed\": %d, \"makespan_ms\": %.3f,\n\
    \               \"virtual_rps\": %.1f },\n\
    \  \"fleet\": { \"shards\": %d, \"wall_s\": %.3f, \"served\": %d,\n\
    \              \"shed\": %d, \"steals\": %d, \"makespan_ms\": %.3f,\n\
    \              \"virtual_rps\": %.1f },\n\
    \  \"fleet_speedup\": %.2f,\n\
     %s\
    \  \"records_jobs_identical\": %b\n\
     }\n"
    n seed
    (Exec.engine_to_string engine)
    jobs single_wall
    (ss.Slo.s_ok + ss.Slo.s_degraded)
    ss.Slo.s_shed ss.Slo.s_makespan_ms ss.Slo.s_throughput_rps shards
    fleet_wall
    (fs.Slo.s_ok + fs.Slo.s_degraded)
    fs.Slo.s_shed steals fs.Slo.s_makespan_ms fs.Slo.s_throughput_rps ratio
    soak_json identical;
  if not identical then begin
    Printf.eprintf
      "bench/fleet: FAIL — fleet records differ between --jobs 1 and \
       --jobs %d\n"
      jobs;
    exit 1
  end;
  if min_ratio > 0. && ratio < min_ratio then begin
    Printf.eprintf
      "bench/fleet: FAIL — %d-shard fleet only %.2fx single-shard \
       virtual throughput (need %.1fx)\n"
      shards ratio min_ratio;
    exit 1
  end
