(* Specialization benchmark: ahead-of-time specialized bytecode vs the
   generic engines on the SpMV/SpMM/SDDMM suite (ROADMAP item 3).

   Gates:

   - each gated scenario's specialized run must be >= [min_ratio] x the
     generic bytecode run in virtual cycles (the CSR SpMV row is
     reported ungated: its trip counts are data-dependent, so
     specialization only folds the entry block);
   - specialized outputs must be bit-identical to the generic outputs,
     and the specialized report must be identical across all three
     engines (interp / compiled / bytecode);
   - steady-state host wall clock of the specialized bytecode must
     improve on generic bytecode (geomean over the suite, warmup/run
     protocol from bench/harness.ml);
   - a warm serve replay must serve specialized artefacts from cache
     ([serve.spec.hit] > 0) with records byte-identical at any --jobs.

   Results go to stdout as JSON (tracked in BENCH_specialize.json by
   tools/specialize_smoke.sh @spec-smoke).

   Usage: specialize.exe [n] [seed] [jobs] [min_ratio; 0 disables]
                         [reps] *)

module Encoding = Asap_tensor.Encoding
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Specialize = Asap_sim.Specialize
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Generate = Asap_workloads.Generate
module Mix = Asap_serve.Mix
module Scheduler = Asap_serve.Scheduler
module Config = Asap_serve.Config
module Slo = Asap_serve.Slo
module Registry = Asap_obs.Registry

type scenario = {
  sc_name : string;
  sc_spec : string;              (* Generate.of_spec matrix *)
  sc_kernel : [ `Spmv | `Spmm | `Sddmm ];
  sc_inner : int;                (* SpMM n / SDDMM kk; 0 where unused *)
  sc_enc : Encoding.t;
  sc_gated : bool;               (* participates in the min_ratio gate *)
}

(* The win comes from constant-trip inner loops (SpMM dense columns,
   SDDMM contraction depth, BSR block loops): full unrolling deletes the
   two per-iteration loop-overhead events and the per-entry exit bubble.
   CSR SpMV has no such loop — its inner trips are data-dependent — so
   it rides along ungated as the honest lower bound. *)
let scenarios =
  [ { sc_name = "spmm_csr_uniform"; sc_spec = "uniform:3000,30000";
      sc_kernel = `Spmm; sc_inner = 8; sc_enc = Encoding.csr ();
      sc_gated = true };
    { sc_name = "spmm_csr_powerlaw"; sc_spec = "powerlaw:3000,8";
      sc_kernel = `Spmm; sc_inner = 8; sc_enc = Encoding.csr ();
      sc_gated = true };
    { sc_name = "sddmm_csr_uniform"; sc_spec = "uniform:3000,30000";
      sc_kernel = `Sddmm; sc_inner = 8; sc_enc = Encoding.csr ();
      sc_gated = true };
    (* Dims divisible by the block sides, so the specializer proves both
       edge clamps away and fully unrolls the bh x bw micro loops. *)
    { sc_name = "spmv_bsr2x3_banded"; sc_spec = "banded:19998,4";
      sc_kernel = `Spmv; sc_inner = 0;
      sc_enc = Encoding.bsr ~bh:2 ~bw:3 (); sc_gated = true };
    (* Reported ungated: random scatter leaves mostly-singleton blocks,
       where the unroll win is partly offset by the tighter load spacing
       running ahead of the hardware prefetcher. *)
    { sc_name = "spmv_bsr2x2_uniform"; sc_spec = "uniform:20000,120000";
      sc_kernel = `Spmv; sc_inner = 0;
      sc_enc = Encoding.bsr ~bh:2 ~bw:2 (); sc_gated = false };
    { sc_name = "spmv_csr_uniform"; sc_spec = "uniform:20000,120000";
      sc_kernel = `Spmv; sc_inner = 0; sc_enc = Encoding.csr ();
      sc_gated = false } ]

let geomean = function
  | [] -> 1.
  | xs ->
    exp (List.fold_left (fun s x -> s +. log x) 0. xs
         /. float_of_int (List.length xs))

let () =
  let argi i default =
    if Array.length Sys.argv > i then int_of_string Sys.argv.(i) else default
  in
  let argf i default =
    if Array.length Sys.argv > i then float_of_string Sys.argv.(i)
    else default
  in
  let n = argi 1 120 in
  let seed = argi 2 11 in
  let jobs = argi 3 4 in
  let min_ratio = argf 4 1.15 in
  let reps = argi 5 12 in
  let machine = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in

  (* --- specialized vs generic, per scenario --------------------------- *)
  let wall_ratios = ref [] in
  let measure sc =
    let coo =
      match Generate.of_spec sc.sc_spec with
      | Ok coo -> coo
      | Error e -> Printf.eprintf "bad spec %s: %s\n" sc.sc_spec e; exit 1
    in
    let variant = Pipeline.Asap Asap_prefetch.Asap.default in
    let cfg ~specialize engine =
      Driver.Cfg.make ~engine ~specialize
        ?n:(if sc.sc_inner > 0 then Some sc.sc_inner else None)
        ~machine ~variant ()
    in
    let kspec =
      match sc.sc_kernel with
      | `Spmv -> Driver.Spmv sc.sc_enc
      | `Spmm -> Driver.Spmm sc.sc_enc
      | `Sddmm -> Driver.Sddmm sc.sc_enc
    in
    let generic = Driver.run (cfg ~specialize:false `Bytecode) kspec coo in
    let specd = Driver.run (cfg ~specialize:true `Bytecode) kspec coo in
    (* Value exactness: bit-identical outputs (same op order). *)
    (match (generic.Driver.out_f, specd.Driver.out_f) with
     | Some g, Some s ->
       if g <> s then fail "%s: specialized output differs" sc.sc_name
     | _ -> fail "%s: missing numeric output" sc.sc_name);
    let err =
      match sc.sc_kernel with
      | `Spmv -> Driver.check_spmv coo specd
      | `Spmm -> Driver.check_spmm coo ~n:sc.sc_inner specd
      | `Sddmm -> Driver.check_sddmm coo ~kk:sc.sc_inner specd
    in
    if err > 1e-9 then
      fail "%s: specialized output off the dense reference by %g" sc.sc_name
        err;
    (* Report exactness: the specialized function must time identically
       on all three engines. *)
    let spec_counters e = (Driver.run (cfg ~specialize:true e) kspec coo).Driver.counters in
    if spec_counters `Interp <> specd.Driver.counters then
      fail "%s: specialized interp report differs from bytecode" sc.sc_name;
    if spec_counters `Compiled <> specd.Driver.counters then
      fail "%s: specialized compiled report differs from bytecode" sc.sc_name;
    let gc = generic.Driver.report.Exec.rp_cycles
    and sc_cycles = specd.Driver.report.Exec.rp_cycles in
    let ratio = float_of_int gc /. float_of_int sc_cycles in
    if sc.sc_gated && min_ratio > 0. && ratio < min_ratio then
      fail "%s: specialized only %.3fx generic virtual cycles (need %.2fx)"
        sc.sc_name ratio min_ratio;
    (* Steady-state host wall clock, warmup/run protocol: prepare both
       forms once, then time repeated re-executions. *)
    let prep specialize =
      Driver.Prep.make (cfg ~specialize `Bytecode) kspec coo
    in
    let pg = prep false and ps = prep true in
    let wall p =
      Harness.measure_wall ~warmup:2 ~reps (fun () ->
          ignore (Driver.Prep.exec p))
    in
    let wg = wall pg and ws = wall ps in
    let wall_ratio = wg /. ws in
    wall_ratios := wall_ratio :: !wall_ratios;
    Printf.sprintf
      "    { \"name\": %S, \"matrix\": %S, \"nnz\": %d, \"gated\": %b,\n\
      \      \"generic_cycles\": %d, \"specialized_cycles\": %d,\n\
      \      \"cycle_speedup\": %.3f, \"wall_speedup\": %.3f,\n\
      \      \"max_err\": %.2e }"
      sc.sc_name sc.sc_spec specd.Driver.nnz sc.sc_gated gc sc_cycles ratio
      wall_ratio err
  in
  let rows = List.map measure scenarios in
  let wall_geomean = geomean !wall_ratios in
  if wall_geomean <= 1.0 then
    fail
      "specialized bytecode shows no wall-clock win (geomean %.3fx <= 1.0)"
      wall_geomean;

  (* --- warm serve replay: specialized artefacts from cache ------------ *)
  let profiles =
    List.map
      (fun p -> { p with Mix.p_specialize = true })
      (Mix.default_profiles ())
  in
  let reqs = Mix.hot_cold ~seed ~n profiles in
  let replay jobs = Scheduler.run Config.(with_jobs jobs default) reqs in
  let lines rp =
    String.concat "\n"
      (Array.to_list
         (Array.map Scheduler.record_to_line rp.Scheduler.rp_records))
  in
  let rp = replay jobs in
  let rp_seq = replay 1 in
  let identical = String.equal (lines rp) (lines rp_seq) in
  let counter name =
    Option.value ~default:0 (Registry.get rp.Scheduler.rp_registry name)
  in
  let spec_hits = counter "serve.spec.hit" in
  let spec_misses = counter "serve.spec.miss" in
  let pack_hits = counter "serve.pack.hit" in
  if not identical then
    fail "replay records differ between --jobs 1 and --jobs %d" jobs;
  if spec_hits <= 0 then
    fail "warm serve replay served no specialized artefacts from cache";
  if spec_misses <= 0 then
    fail "serve replay built no specialized artefacts (flag not threaded?)";

  Printf.printf
    "{\n\
    \  \"engine\": \"bytecode\",\n\
    \  \"min_ratio\": %.2f,\n\
    \  \"scenarios\": [\n%s\n  ],\n\
    \  \"wall_speedup_geomean\": %.3f,\n\
    \  \"serve\": {\n\
    \    \"requests\": %d, \"jobs\": %d,\n\
    \    \"spec_hits\": %d, \"spec_misses\": %d,\n\
    \    \"spec_build_ns\": %d,\n\
    \    \"pack_hits\": %d, \"pack_misses\": %d,\n\
    \    \"records_jobs_identical\": %b\n\
    \  }\n\
     }\n"
    min_ratio
    (String.concat ",\n" rows)
    wall_geomean n jobs spec_hits spec_misses
    (counter "serve.spec.build_ns")
    pack_hits (counter "serve.pack.miss") identical;
  match !failures with
  | [] -> ()
  | fs ->
    List.iter (fun m -> Printf.eprintf "bench/specialize: FAIL — %s\n" m)
      (List.rev fs);
    exit 1
