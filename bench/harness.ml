(* Shared benchmark engine.

   Figures 6, 7 and 11 draw from the same (matrix x variant x prefetcher
   config) measurement grid, so results are memoised per process. All
   simulated runs are deterministic, making every table exactly
   reproducible. *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Storage = Asap_tensor.Storage
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Hierarchy = Asap_sim.Hierarchy
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Par = Asap_core.Par
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Suite = Asap_workloads.Suite
module Summary = Asap_metrics.Summary

type hw = Default | Optimized

let hw_name = function Default -> "default" | Optimized -> "optimized"

type vkind = Base | A | Jones

let vkind_name = function
  | Base -> "baseline"
  | A -> "asap"
  | Jones -> "ainsworth-jones"

(* The paper fixes distance 45 for both prefetching variants (§4.3) on the
   real 32 KB-L1 machine; on the capacity-scaled evaluation machine the
   equivalent lookahead is 16 (examples/distance_tuning.ml shows the
   plateau). Both variants use the same distance, as in the paper. *)
let eval_distance = 16

let variant_of ~kernel = function
  | Base -> Pipeline.Baseline
  | A ->
    (match kernel with
     | `Spmv -> Pipeline.Asap { Asap.default with Asap.distance = eval_distance }
     | `Spmm ->
       Pipeline.Asap
         { Asap.default with Asap.strategy = Asap.Outer_only;
           distance = eval_distance })
  | Jones -> Pipeline.Ainsworth_jones { Aj.default with Aj.distance = eval_distance }

let machine_of ~kernel ~threads = function
  | Default -> Machine.gracemont_scaled ~hw:Machine.hw_default ~cores:threads ()
  | Optimized ->
    let hw =
      match kernel with
      | `Spmv -> Machine.hw_optimized
      | `Spmm -> Machine.hw_optimized_spmm
    in
    Machine.gracemont_scaled ~hw ~cores:threads ()

type measurement = {
  m_name : string;
  m_group : string;
  m_nnz : int;
  m_throughput : float;        (* nnz per ms *)
  m_gflops : float;            (* simulated GFLOP/s at the machine clock *)
  m_mpki : float;
  m_report : Exec.report;
}

(* --- Host wall-clock protocol ---------------------------------------- *)

(** [measure_wall ~warmup ~reps f] is the median wall-clock seconds of
    one [f ()] call: [warmup] untimed calls first (caches, branch
    predictors, allocator state), then [reps] timed calls, median
    reported so a stray scheduler hiccup cannot skew the figure. This is
    the one measurement protocol every host-time figure in bench/ goes
    through; simulated quantities (cycles, throughput, GFLOP/s) never
    need it — they are deterministic. *)
let measure_wall ?(warmup = 2) ?(reps = 9) (f : unit -> unit) : float =
  for _ = 1 to warmup do f () done;
  let reps = max 1 reps in
  let times =
    Array.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  Array.sort compare times;
  times.(reps / 2)

(* Execution knobs, set by the CLI before any cell runs. [engine] selects
   the simulator's execution engine for every cell; [jobs] > 1 lets
   [prewarm] farm cells to that many host domains. *)
let engine = ref Exec.default_engine
let jobs = ref 1

(* Optional JSONL run-record sink (--records FILE): one record per grid
   cell, written when the cell's measurement first lands in the cache —
   always on the calling domain, so records are ordered and the worker
   domains stay write-free. *)
let records : Asap_obs.Run_record.t option ref = ref None

let emit_record key (m : measurement) =
  match !records with
  | None -> ()
  | Some rr ->
    Asap_obs.Run_record.emit rr
      [ ("cell", Asap_obs.Jsonu.Str key);
        ("name", Asap_obs.Jsonu.Str m.m_name);
        ("group", Asap_obs.Jsonu.Str m.m_group);
        ("engine", Asap_obs.Jsonu.Str (Exec.engine_to_string !engine));
        ("nnz", Asap_obs.Jsonu.Int m.m_nnz);
        ("throughput_nnz_per_ms", Asap_obs.Jsonu.Float m.m_throughput);
        ("gflops", Asap_obs.Jsonu.Float m.m_gflops);
        ("l2_mpki", Asap_obs.Jsonu.Float m.m_mpki);
        Asap_obs.Run_record.counters_field (Exec.Report.registry m.m_report) ]

(* Generated matrices, their packed storages, and run results are cached
   per process. All caches live on (and are only touched by) the calling
   domain. *)
let matrix_cache : (string, Coo.t) Hashtbl.t = Hashtbl.create 32
let pack_cache : (string, Storage.t) Hashtbl.t = Hashtbl.create 32
let run_cache : (string, measurement) Hashtbl.t = Hashtbl.create 256

let matrix (e : Suite.entry) =
  match Hashtbl.find_opt matrix_cache e.Suite.name with
  | Some m -> m
  | None ->
    let m = e.Suite.gen () in
    Hashtbl.add matrix_cache e.Suite.name m;
    m

(* Every grid cell packs under CSR, so one packing per matrix serves all
   its cells (SpMV and SpMM alike). *)
let packed (e : Suite.entry) coo =
  match Hashtbl.find_opt pack_cache e.Suite.name with
  | Some st -> st
  | None ->
    let st = Storage.pack (Encoding.csr ()) coo in
    Hashtbl.add pack_cache e.Suite.name st;
    st

(* Matrices are large; once a matrix's runs are done the cache can be
   dropped to bound memory. *)
let drop_matrix name =
  Hashtbl.remove matrix_cache name;
  Hashtbl.remove pack_cache name

let verbose = ref true

let log fmt =
  Printf.ksprintf (fun s -> if !verbose then Printf.eprintf "%s\n%!" s) fmt

(* --- The measurement grid ------------------------------------------- *)

type kernel = [ `Spmv | `Spmm ]

(** One cell of the (matrix x variant x prefetcher config) grid. *)
type cell = {
  c_kernel : kernel;
  c_entry : Suite.entry;
  c_vkind : vkind;
  c_hw : hw;
  c_threads : int;
}

let cell ?(threads = 1) kernel entry vkind hw =
  { c_kernel = kernel; c_entry = entry; c_vkind = vkind; c_hw = hw;
    c_threads = threads }

let cell_key (c : cell) =
  Printf.sprintf "%s/%s/%s/%s/%d"
    (match c.c_kernel with `Spmv -> "spmv" | `Spmm -> "spmm")
    c.c_entry.Suite.name (vkind_name c.c_vkind) (hw_name c.c_hw) c.c_threads

(* Run one cell against an already-generated and packed matrix. Pure
   apart from the simulation itself: safe to call from worker domains
   (it must not touch the caches above). *)
let compute_cell ~engine (c : cell) coo st : measurement =
  let e = c.c_entry and kernel = c.c_kernel and threads = c.c_threads in
  let machine = machine_of ~kernel ~threads c.c_hw in
  let variant = variant_of ~kernel c.c_vkind in
  let enc = Encoding.csr () in
  let r =
    match kernel with
    | `Spmv ->
      Driver.spmv ~engine ~threads ~binary:e.Suite.binary ~st machine variant
        enc coo
    | `Spmm ->
      Driver.spmm ~engine ~threads ~binary:e.Suite.binary ~st machine variant
        enc coo
  in
  { m_name = e.Suite.name; m_group = e.Suite.group; m_nnz = r.Driver.nnz;
    m_throughput = Driver.throughput r;
    m_gflops = Exec.gflops r.Driver.report; m_mpki = Driver.mpki r;
    m_report = r.Driver.report }

(** [measure kernel entry vkind hw] runs one cell of the grid (memoised). *)
let measure ?(threads = 1) kernel (e : Suite.entry) vkind hw : measurement =
  let c = cell ~threads kernel e vkind hw in
  let key = cell_key c in
  match Hashtbl.find_opt run_cache key with
  | Some m -> m
  | None ->
    let coo = matrix e in
    let st = packed e coo in
    log "  running %s ..." key;
    let m = compute_cell ~engine:!engine c coo st in
    Hashtbl.add run_cache key m;
    emit_record key m;
    m

(** [prewarm cells] fills [run_cache] for every not-yet-measured cell,
    farming whole matrices (generate + pack + all their cells) to [!jobs]
    worker domains. Results are merged into the cache in input order on
    the calling domain, so subsequent [measure] calls — and therefore the
    printed tables — are byte-identical to a sequential run. A no-op when
    [!jobs <= 1]: the sequential path keeps its incremental logging. *)
let prewarm (cells : cell list) =
  if !jobs > 1 then begin
    let todo =
      List.filter (fun c -> not (Hashtbl.mem run_cache (cell_key c))) cells
    in
    (* One task per matrix: generate and pack once, then run that
       matrix's cells. Grouping preserves first-appearance order. *)
    let order : string list ref = ref [] in
    let by_entry : (string, cell list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun c ->
        let name = c.c_entry.Suite.name in
        match Hashtbl.find_opt by_entry name with
        | Some l -> l := c :: !l
        | None ->
          Hashtbl.add by_entry name (ref [ c ]);
          order := name :: !order)
      todo;
    let tasks =
      List.rev_map
        (fun name ->
          let cs = List.rev !(Hashtbl.find by_entry name) in
          (* Reuse main-domain caches read-only: resolved here, before
             any worker starts. *)
          let pre_coo =
            Hashtbl.find_opt matrix_cache
              (List.hd cs).c_entry.Suite.name
          in
          let pre_st = Hashtbl.find_opt pack_cache name in
          (cs, pre_coo, pre_st))
        !order
      |> List.rev
    in
    if tasks <> [] then begin
      let eng = !engine in
      log "  prewarming %d cells over %d matrices with %d domains ..."
        (List.length todo) (List.length tasks) !jobs;
      let results =
        Par.map ~jobs:!jobs
          (fun (cs, pre_coo, pre_st) ->
            let e = (List.hd cs).c_entry in
            let coo =
              match pre_coo with Some m -> m | None -> e.Suite.gen ()
            in
            let st =
              match pre_st with
              | Some st -> st
              | None -> Storage.pack (Encoding.csr ()) coo
            in
            List.map (fun c -> (cell_key c, compute_cell ~engine:eng c coo st))
              cs)
          (Array.of_list tasks)
      in
      Array.iter
        (List.iter (fun (key, m) ->
             if not (Hashtbl.mem run_cache key) then begin
               Hashtbl.add run_cache key m;
               emit_record key m
             end))
        results
    end
  end

(* --- Matrix selections --------------------------------------------- *)

let quick = ref false

(* In quick mode keep one representative matrix per group. *)
let spmv_entries () =
  if not !quick then Suite.entries
  else
    List.filter_map
      (fun g ->
        match Suite.by_group g with e :: _ -> Some e | [] -> None)
      Suite.groups

let spmm_entries () =
  let all = Suite.spmm_subset in
  if not !quick then all
  else
    List.filteri (fun i _ -> i mod 2 = 0) all

(* --- Formatting ----------------------------------------------------- *)

let header title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 78 '=') title
    (String.make 78 '=')

let subheader title = Printf.printf "\n--- %s ---\n\n" title

(** Equal-work harmonic-mean speedup over a list of (base, variant)
    throughput pairs. *)
let ews pairs =
  let base = Array.of_list (List.map fst pairs) in
  let var = Array.of_list (List.map snd pairs) in
  Summary.ews ~base ~variant:var

(** Group rows for the Fig. 7/10/11-style tables: per matrix group, the
    EWS of each labelled series against the first series. *)
let group_table ~groups ~series ~(rows : (string * (string * float) list) list)
    =
  (* rows: (group, [(series label, throughput)]) one per matrix. *)
  let labels = series in
  Printf.printf "%-12s" "group";
  List.iter (fun l -> Printf.printf " %14s" l) labels;
  Printf.printf "\n";
  let print_group gname matching =
    if matching <> [] then begin
      Printf.printf "%-12s" gname;
      let base = List.map (fun (_, tps) -> List.assoc (List.hd labels) tps)
          matching
      in
      List.iter
        (fun l ->
          let v = List.map (fun (_, tps) -> List.assoc l tps) matching in
          let e =
            Summary.ews ~base:(Array.of_list base) ~variant:(Array.of_list v)
          in
          Printf.printf " %14.2f" e)
        labels;
      Printf.printf "   (%d matrices)\n" (List.length matching)
    end
  in
  List.iter
    (fun g -> print_group g (List.filter (fun (g', _) -> g' = g) rows))
    groups;
  (* Aggregates: Selected = the unstructured groups; Others as-is. *)
  print_group "Selected"
    (List.filter (fun (g, _) -> List.mem g Suite.selected_groups) rows)
