(* asapc — command-line front end.

   Subcommands:
     compile   sparsify a kernel for a format/variant and print the IR
     run       execute a kernel over a Matrix Market file (or a synthetic
               matrix) on the simulated machine and report PMU metrics
     inspect   show a matrix's storage buffers and coordinate tree
     gen       write a synthetic matrix to a Matrix Market file
     serve     replay a JSONL request file through the serving scheduler
     genreqs   write a synthetic hot/cold request mix as JSONL
     passes    list the registered pipeline passes and their parameters *)

module Coo = Asap_tensor.Coo
module Encoding = Asap_tensor.Encoding
module Storage = Asap_tensor.Storage
module Coord_tree = Asap_tensor.Coord_tree
module Matrix_market = Asap_tensor.Matrix_market
module Kernel = Asap_lang.Kernel
module Machine = Asap_sim.Machine
module Exec = Asap_sim.Exec
module Hierarchy = Asap_sim.Hierarchy
module Pipeline = Asap_core.Pipeline
module Driver = Asap_core.Driver
module Asap = Asap_prefetch.Asap
module Aj = Asap_prefetch.Ainsworth_jones
module Generate = Asap_workloads.Generate
open Cmdliner

(* --- Shared argument parsers ---------------------------------------- *)

let format_conv =
  let parse = function
    | "coo" -> Ok (Encoding.coo ())
    | "csr" -> Ok (Encoding.csr ())
    | "csc" -> Ok (Encoding.csc ())
    | "dcsr" -> Ok (Encoding.dcsr ())
    | "bsr" -> Ok (Encoding.bsr ~bh:4 ~bw:4 ())
    | s ->
      (match Scanf.sscanf_opt s "bsr%dx%d%!" (fun bh bw -> (bh, bw)) with
       | Some (bh, bw) when bh >= 1 && bw >= 1 ->
         Ok (Encoding.bsr ~bh ~bw ())
       | _ -> Error (`Msg (Printf.sprintf "unknown format %S" s)))
  in
  Arg.conv (parse, fun fmt e -> Format.pp_print_string fmt e.Encoding.name)

let format_arg =
  Arg.(value & opt format_conv (Encoding.csr ())
       & info [ "f"; "format" ] ~docv:"FORMAT"
           ~doc:"Sparse format: coo, csr, csc, dcsr, or bsr[<bh>x<bw>] \
                 (blocked rows/cols, 4x4 default).")

let kernel_arg =
  Arg.(value
       & opt (enum [ ("spmv", `Spmv); ("spmm", `Spmm); ("sddmm", `Sddmm) ])
           `Spmv
       & info [ "k"; "kernel" ] ~docv:"KERNEL"
           ~doc:"Kernel: spmv, spmm or sddmm.")

let distance_arg =
  Arg.(value & opt int 45
       & info [ "d"; "distance" ] ~docv:"N"
           ~doc:"Prefetch lookahead distance in iterations.")

let strategy_arg =
  Arg.(value
       & opt (enum [ ("inner", Asap.Innermost_only); ("outer", Asap.Outer_only);
                     ("both", Asap.Both) ])
           Asap.Both
       & info [ "strategy" ] ~docv:"S"
           ~doc:"ASaP placement: inner, outer or both.")

let bound_arg =
  Arg.(value
       & opt (enum [ ("semantic", Asap.Semantic);
                     ("segment", Asap.Segment_local) ])
           Asap.Semantic
       & info [ "bound" ] ~docv:"B"
           ~doc:"Step-2 bound: semantic (ASaP) or segment (prior art).")

let variant_arg =
  Arg.(value & opt (enum [ ("baseline", `Baseline); ("asap", `Asap); ("aj", `Aj) ])
         `Baseline
       & info [ "v"; "variant" ] ~docv:"VARIANT"
           ~doc:"Prefetching variant: baseline, asap or aj.")

let engine_conv =
  let parse s =
    match Exec.engine_of_string s with
    | Some e -> Ok e
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown engine %S (expected %s)" s
              Exec.valid_engines))
  in
  Arg.conv
    (parse, fun fmt e -> Format.pp_print_string fmt (Exec.engine_to_string e))

let engine_arg =
  Arg.(value & opt engine_conv Exec.default_engine
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: bytecode (flat bytecode with \
                 superinstruction fusion, default), compiled (staged \
                 closures) or interp (tree-walking reference). All three \
                 are cycle-exact.")

let tune_mode_conv =
  let parse s =
    match Asap_core.Tuning.mode_of_string s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown tune mode %S (expected %s)" s
              Asap_core.Tuning.valid_modes))
  in
  Arg.conv
    ( parse,
      fun fmt m ->
        Format.pp_print_string fmt (Asap_core.Tuning.mode_to_string m) )

let tune_mode_doc =
  "How tuned variants are decided: sweep (profile every candidate \
   distance on a slice), model (predict from one-pass matrix features — \
   no profiling simulations), or hybrid (serve the sweep's decision, \
   record whether the model agreed)."

(* A --pipeline spec is validated against the pass registry right at
   argument parsing, so a typo fails before any matrix is read. *)
let pipeline_conv =
  let parse s =
    match Asap_pass.Runner.resolve s with
    | (_ : Asap_pass.Runner.resolved) -> Ok s
    | exception Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, Format.pp_print_string)

let pipeline_arg =
  Arg.(value & opt (some pipeline_conv) None
       & info [ "pipeline" ] ~docv:"SPEC"
           ~doc:"Explicit pass-pipeline spec, e.g. \
                 sparsify,asap{d=32},fold,licm,unroll{f=4}. Overrides the \
                 variant's default pipeline; see $(b,asapc passes) for the \
                 registry.")

let specialize_arg =
  Arg.(value & flag
       & info [ "specialize" ]
           ~doc:"Ahead-of-time kernel specialization: bake the runtime \
                 facts that are constant for the artefact (dimension \
                 extents, dense inner extents, the variant's prefetch \
                 distance) into the program — constants folded through \
                 the body, small constant-trip loops fully unrolled, \
                 prefetch hooks stripped when the distance is 0, dead \
                 feeder arithmetic swept — before staging. Results and \
                 reports are exactly those of the generic program; only \
                 virtual cycles (and host time) improve.")

let variant_of v ~distance ~strategy ~bound =
  match v with
  | `Baseline -> Pipeline.Baseline
  | `Asap ->
    Pipeline.Asap
      { Asap.default with Asap.distance; strategy; bound_mode = bound }
  | `Aj -> Pipeline.Ainsworth_jones { Aj.default with Aj.distance }

let matrix_args =
  let mtx =
    Arg.(value & opt (some string) None
         & info [ "m"; "matrix" ] ~docv:"FILE" ~doc:"Matrix Market input file.")
  in
  let gen =
    Arg.(value & opt (some string) None
         & info [ "g"; "gen" ] ~docv:"SPEC"
             ~doc:"Synthetic matrix spec, e.g. powerlaw:100000,8 or \
                   uniform:50000,400000 or banded:100000,2 or road:200000,3.")
  in
  let build mtx gen =
    match (mtx, gen) with
    | Some path, None -> Ok (Matrix_market.read path)
    | None, Some spec ->
      (match Generate.of_spec spec with
       | Ok coo -> Ok coo
       | Error e -> Error (`Msg e))
    | None, None ->
      (* Default demo matrix: the Fig. 2 example. *)
      Ok (Coo.of_triples ~rows:3 ~cols:3 [ (0, 0, 1.); (0, 2, 2.); (2, 2, 3.) ])
    | Some _, Some _ -> Error (`Msg "give either --matrix or --gen, not both")
  in
  Term.(term_result (const (fun m g -> build m g) $ mtx $ gen))

(* --- compile --------------------------------------------------------- *)

let compile_cmd =
  let run kernel enc v distance strategy bound pipeline specialize =
    let kernel = match kernel with
      | `Spmv -> Kernel.spmv ~enc ()
      | `Spmm -> Kernel.spmm ~enc ()
      | `Sddmm -> Kernel.sddmm ~enc ()
    in
    let variant = variant_of v ~distance ~strategy ~bound in
    let c = Pipeline.compile ?pipeline kernel variant in
    if specialize then begin
      (* No matrix at compile time, so specialize against representative
         extents (every scalar parameter = 8) — enough to show what the
         specializer folds, unrolls and strips for this kernel shape. *)
      let module Specialize = Asap_sim.Specialize in
      let nscalars =
        List.fold_left
          (fun acc p ->
            match p with Asap_ir.Ir.Pscalar _ -> acc + 1 | _ -> acc)
          0 c.Pipeline.fn.Asap_ir.Ir.fn_params
      in
      let facts =
        Specialize.make
          ?distance:(Driver.variant_distance variant)
          ~scalars:(List.init nscalars (fun _ -> 8)) ()
      in
      let fn, st = Specialize.apply facts c.Pipeline.fn in
      print_string (Asap_ir.Printer.to_string fn);
      Printf.printf
        "// specialized (representative extents: every scalar = 8): \
         %d consts folded, %d loops unrolled (%d iterations), %d dead \
         lets swept, %d prefetch hooks stripped\n"
        st.Specialize.sp_folded st.Specialize.sp_unrolled
        st.Specialize.sp_iterations st.Specialize.sp_dce
        st.Specialize.sp_prefetch_stripped
    end
    else begin
      print_string (Pipeline.listing c);
      Printf.printf "// prefetch sites: %d\n" c.Pipeline.n_prefetch_sites
    end
  in
  Cmd.v (Cmd.info "compile" ~doc:"Sparsify a kernel and print the IR")
    Term.(const run $ kernel_arg $ format_arg $ variant_arg $ distance_arg
          $ strategy_arg $ bound_arg $ pipeline_arg $ specialize_arg)

(* --- run ------------------------------------------------------------- *)

let run_cmd =
  let threads_arg =
    Arg.(value & opt int 1 & info [ "t"; "threads" ] ~docv:"T"
           ~doc:"Thread count (dense-outer-loop parallelisation).")
  in
  let hw_arg =
    Arg.(value & opt (enum [ ("default", `D); ("optimized", `O) ]) `O
         & info [ "hw" ] ~docv:"HW" ~doc:"Hardware prefetcher configuration.")
  in
  let check_arg =
    Arg.(value & flag & info [ "check" ] ~doc:"Verify against the reference.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event JSON of the run to $(docv) \
                   (load it at chrome://tracing or ui.perfetto.dev).")
  in
  let counters_arg =
    Arg.(value & flag
         & info [ "counters" ]
             ~doc:"Dump the full named-counter registry after the run.")
  in
  let run coo kernel enc v distance strategy bound threads hw checkit engine
      trace counters pipeline specialize =
    let hw = match (hw, kernel) with
      | `D, _ -> Machine.hw_default
      | `O, (`Spmv | `Sddmm) -> Machine.hw_optimized
      | `O, `Spmm -> Machine.hw_optimized_spmm
    in
    let machine = Machine.gracemont_scaled ~hw ~cores:(max 1 threads) () in
    let variant = variant_of v ~distance ~strategy ~bound in
    let chrome = Option.map (fun _ -> Asap_obs.Chrome.create ()) trace in
    let obs =
      match chrome with
      | None -> Asap_obs.Sink.null
      | Some c ->
        Asap_obs.Chrome.sink ~pf_name:Asap_sim.Hw_prefetcher.slug_of_id c
    in
    let cfg =
      Driver.Cfg.make ~engine ~threads ~obs ?pipeline ~specialize ~machine
        ~variant ()
    in
    let spec = match kernel with
      | `Spmv -> Driver.Spmv enc
      | `Spmm -> Driver.Spmm enc
      | `Sddmm -> Driver.Sddmm enc
    in
    let r = Driver.run cfg spec coo in
    if checkit then begin
      let err = match kernel with
        | `Spmv -> Driver.check_spmv coo r
        | `Spmm -> Driver.check_spmm coo ~n:8 r
        | `Sddmm -> Driver.check_sddmm coo ~kk:8 r
      in
      Printf.printf "check: max |err| = %g\n" err;
      if err > 1e-6 then exit 1
    end;
    Printf.printf "%s\n" (Exec.summary r.Driver.report);
    Printf.printf "throughput: %.0f nnz/ms  (nnz = %d, threads = %d)\n"
      (Driver.throughput r) r.Driver.nnz threads;
    (match (trace, chrome) with
     | Some path, Some c ->
       Asap_obs.Chrome.write c path;
       Printf.printf "trace: wrote %d events to %s\n"
         (Asap_obs.Chrome.n_events c) path
     | _ -> ());
    if counters then
      Format.printf "%a@?" Exec.Report.pp r.Driver.report
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a kernel on the simulated machine")
    Term.(const run $ matrix_args $ kernel_arg $ format_arg $ variant_arg
          $ distance_arg $ strategy_arg $ bound_arg $ threads_arg $ hw_arg
          $ check_arg $ engine_arg $ trace_arg $ counters_arg $ pipeline_arg
          $ specialize_arg)

(* --- inspect --------------------------------------------------------- *)

let inspect_cmd =
  let tree_arg =
    Arg.(value & flag & info [ "tree" ]
           ~doc:"Draw the coordinate hierarchy tree (small matrices only).")
  in
  let run coo enc tree =
    let st = Storage.pack enc coo in
    print_endline (Encoding.to_string enc);
    print_endline (Storage.describe st);
    let stats = Coo.matrix_stats coo in
    Printf.printf
      "rows %d, cols %d, nnz %d; row degree min/mean/max %d/%.1f/%d;\n\
       CSR footprint %d bytes\n"
      stats.Coo.s_rows stats.Coo.s_cols stats.Coo.s_nnz stats.Coo.s_row_min
      stats.Coo.s_row_mean stats.Coo.s_row_max stats.Coo.s_footprint_bytes;
    if tree then
      if Coo.nnz coo > 64 then print_endline "(matrix too large for --tree)"
      else print_string (Coord_tree.to_string (Coord_tree.of_storage st))
  in
  Cmd.v (Cmd.info "inspect" ~doc:"Show storage buffers and statistics")
    Term.(const run $ matrix_args $ format_arg $ tree_arg)

(* --- tune ------------------------------------------------------------ *)

let tune_cmd =
  let mode_arg =
    Arg.(value & opt tune_mode_conv Asap_core.Tuning.default_mode
         & info [ "tune-mode" ] ~docv:"MODE" ~doc:tune_mode_doc)
  in
  let features_arg =
    Arg.(value & flag
         & info [ "features" ]
             ~doc:"Also print the extracted feature vector the cost model \
                   predicts from.")
  in
  let run coo enc mode features =
    let machine = Machine.gracemont_scaled ~hw:Machine.hw_optimized () in
    let d = Asap_model.Select.decide ~mode machine enc coo in
    if features then
      (match d.Asap_model.Select.d_features with
       | Some f -> Format.printf "%a" Asap_model.Features.pp f
       | None ->
         let f = Asap_model.Features.extract ~machine enc coo in
         Format.printf "%a" Asap_model.Features.pp f);
    print_string (Asap_model.Select.describe d)
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Pick a prefetch configuration: profile a slice (§3.2.3), \
             predict from matrix features, or both")
    Term.(const run $ matrix_args $ format_arg $ mode_arg $ features_arg)

(* --- gen ------------------------------------------------------------- *)

let gen_cmd =
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output .mtx path.")
  in
  let run coo out =
    Matrix_market.write out coo;
    Printf.printf "wrote %s (%d x %d, %d nnz)\n" out coo.Coo.dims.(0)
      coo.Coo.dims.(1) (Coo.nnz coo)
  in
  Cmd.v (Cmd.info "gen" ~doc:"Write a synthetic matrix to Matrix Market")
    Term.(const run $ matrix_args $ out_arg)

(* --- passes ---------------------------------------------------------- *)

let passes_cmd =
  let module Pass = Asap_pass.Pass in
  let run () =
    Asap_pass.Builtin.ensure ();
    List.iter
      (fun (p : Pass.t) ->
        Printf.printf "%-10s %-8s %s\n" p.Pass.name (Pass.kind_name p)
          p.Pass.doc;
        List.iter
          (fun (ps : Pass.param_spec) ->
            let domain =
              match ps.Pass.p_syms with
              | [] -> "int"
              | syms -> String.concat "|" syms
            in
            Printf.printf "             %s=%s  %s (%s)\n" ps.Pass.p_name
              (Asap_pass.Spec.pvalue_to_string ps.Pass.p_default)
              ps.Pass.p_doc domain)
          p.Pass.params)
      (Pass.all ())
  in
  Cmd.v
    (Cmd.info "passes"
       ~doc:"List the registered pipeline passes, their kinds and \
             parameters (with defaults) for --pipeline specs")
    Term.(const run $ const ())

(* --- serve ----------------------------------------------------------- *)

(* "tenant=N,tenant=N" assoc parser, shared by --quotas (ints) and
   genreqs --tenants (float weights). *)
let assoc_conv ~name of_string =
  let parse s =
    let items = String.split_on_char ',' (String.trim s) in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest ->
        (match String.index_opt item '=' with
         | None ->
           Error
             (`Msg (Printf.sprintf "%s: %S is not tenant=value" name item))
         | Some eq ->
           let tenant = String.sub item 0 eq in
           let v = String.sub item (eq + 1) (String.length item - eq - 1) in
           (match of_string v with
            | Some v when tenant <> "" -> go ((tenant, v) :: acc) rest
            | _ ->
              Error
                (`Msg
                   (Printf.sprintf "%s: bad entry %S (want tenant=value)" name
                      item))))
    in
    go [] items
  in
  let print fmt l =
    Format.pp_print_string fmt
      (String.concat "," (List.map (fun (t, _) -> t ^ "=..") l))
  in
  Arg.conv (parse, print)

let serve_cmd =
  let module Scheduler = Asap_serve.Scheduler in
  let module Config = Asap_serve.Config in
  let module Request = Asap_serve.Request in
  let requests_arg =
    Arg.(required & opt (some string) None
         & info [ "requests" ] ~docv:"FILE"
             ~doc:"JSONL item stream: request objects plus optional \
                   {\"kind\": \"update\"} streaming-delta lines (one per \
                   line; blank and # lines skipped).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write per-request records as JSONL to $(docv). Records \
                   carry only virtual-time quantities, so output is \
                   byte-deterministic at any --jobs.")
  in
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Host domains for the build pass (scheduling itself is \
                   a sequential virtual-time simulation).")
  in
  let shards_arg =
    Arg.(value & opt int Config.default.Config.shards
         & info [ "shards" ] ~docv:"N"
             ~doc:"Fleet width: shards routed by consistent hashing on \
                   artefact fingerprints, each with its own queue, cache \
                   and servers.")
  in
  let servers_arg =
    Arg.(value & opt int Config.default.Config.servers
         & info [ "servers" ] ~docv:"N" ~doc:"Virtual servers per shard.")
  in
  let queue_arg =
    Arg.(value & opt int Config.default.Config.queue_limit
         & info [ "queue" ] ~docv:"N"
             ~doc:"Per-shard queue depth limit; arrivals past it are shed.")
  in
  let cache_arg =
    Arg.(value & opt int Config.default.Config.cache_capacity
         & info [ "cache" ] ~docv:"N"
             ~doc:"Per-shard compile/tune LRU capacity.")
  in
  let no_steal_arg =
    Arg.(value & flag
         & info [ "no-steal" ]
             ~doc:"Disable cross-shard work stealing (idle shards serving \
                   the longest other queue).")
  in
  let quota_arg =
    Arg.(value & opt (some int) None
         & info [ "quota" ] ~docv:"N"
             ~doc:"Default per-tenant admission quota: at most $(docv) \
                   requests of one tenant queued fleet-wide; arrivals past \
                   it are shed.")
  in
  let quotas_arg =
    Arg.(value & opt (some (assoc_conv ~name:"--quotas" int_of_string_opt))
           None
         & info [ "quotas" ] ~docv:"T=N,..."
             ~doc:"Per-tenant quota overrides, e.g. alpha=8,beta=2.")
  in
  let deadline_policy_arg =
    let policy_conv =
      let parse s =
        match Config.deadline_policy_of_string s with
        | Some p -> Ok p
        | None ->
          Error
            (`Msg
               (Printf.sprintf "unknown deadline policy %S (expected %s)" s
                  Config.valid_deadline_policies))
      in
      Arg.conv
        ( parse,
          fun fmt p ->
            Format.pp_print_string fmt (Config.deadline_policy_to_string p) )
    in
    Arg.(value & opt policy_conv Config.default.Config.deadline_policy
         & info [ "deadline-policy" ] ~docv:"POLICY"
             ~doc:"What happens to a request whose deadline expired while \
                   queued: degrade (serve its prefetch-free baseline, \
                   default), drop (shed at dispatch), or ignore.")
  in
  let no_cache_arg =
    Arg.(value & flag
         & info [ "no-cache" ]
             ~doc:"Disable the cache (and memoised builds and batching): \
                   the honest rebuild-everything baseline.")
  in
  let no_batch_arg =
    Arg.(value & flag
         & info [ "no-batch" ]
             ~doc:"Disable same-fingerprint batching.")
  in
  let summary_arg =
    Arg.(value & flag
         & info [ "summary" ] ~doc:"Print the SLO summary (human form).")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event JSON of the replay: one \
                   track per virtual server, shed instants on the \
                   admission track.")
  in
  let counters_arg =
    Arg.(value & flag
         & info [ "counters" ] ~doc:"Dump the serve.* counter registry.")
  in
  let mode_arg =
    Arg.(value & opt (some tune_mode_conv) None
         & info [ "tune-mode" ] ~docv:"MODE"
             ~doc:(tune_mode_doc
                   ^ " Overrides the tune_mode field of every request; \
                      without it each request's own field (default sweep) \
                      applies."))
  in
  (* "tenant=spec;tenant=spec" — ';' separates entries because ',' is
     the pass separator inside a spec. The first '=' splits tenant from
     spec (specs themselves contain '=' in parameter lists). *)
  let pipelines_arg =
    let tenant_pipelines_conv =
      let parse s =
        let items =
          String.split_on_char ';' (String.trim s)
          |> List.map String.trim
          |> List.filter (fun i -> i <> "")
        in
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | item :: rest ->
            (match String.index_opt item '=' with
             | None ->
               Error
                 (`Msg
                    (Printf.sprintf "--pipelines: %S is not tenant=spec" item))
             | Some eq ->
               let tenant = String.sub item 0 eq in
               let spec =
                 String.sub item (eq + 1) (String.length item - eq - 1)
               in
               if tenant = "" then
                 Error
                   (`Msg
                      (Printf.sprintf "--pipelines: %S names no tenant" item))
               else
                 (match Asap_pass.Runner.resolve spec with
                  | (_ : Asap_pass.Runner.resolved) ->
                    go ((tenant, spec) :: acc) rest
                  | exception Invalid_argument m ->
                    Error
                      (`Msg
                         (Printf.sprintf "--pipelines: tenant %S: %s" tenant m))))
        in
        go [] items
      in
      let print fmt l =
        Format.pp_print_string fmt
          (String.concat ";" (List.map (fun (t, s) -> t ^ "=" ^ s) l))
      in
      Arg.conv (parse, print)
    in
    Arg.(value & opt (some tenant_pipelines_conv) None
         & info [ "pipelines" ] ~docv:"T=SPEC;..."
             ~doc:"Per-tenant pass-pipeline overrides, e.g. \
                   'alpha=sparsify,asap{d=16};beta=sparsify,unroll{f=4}' \
                   (';'-separated — ',' separates passes inside a spec). A \
                   tenant's spec replaces the pipeline of every one of its \
                   requests and enters the artefact fingerprint in \
                   canonical form.")
  in
  let serve_specialize_arg =
    Arg.(value & flag
         & info [ "specialize" ]
             ~doc:"Override every request's specialize field: build and \
                   serve ahead-of-time specialized artefacts (constants \
                   baked in, constant-trip loops unrolled). Enters the \
                   fingerprint, so specialized and generic entries never \
                   share a cache slot. Without the flag each request's \
                   own field applies.")
  in
  let run requests out jobs shards servers queue cache no_cache no_batch
      no_steal quota quotas deadline_policy summary trace counters mode
      pipelines specialize =
    match Request.load_items requests with
    | Error e -> prerr_endline ("asapc serve: " ^ e); exit 1
    | Ok items ->
      let reqs, updates = Request.split_items items in
      let config =
        Config.(
          default |> with_shards shards |> with_servers servers
          |> with_queue_limit queue
          |> with_cache_capacity (if no_cache then 0 else cache)
          |> with_batching (not no_batch)
          |> with_stealing (not no_steal)
          |> with_quota quota
          |> with_quotas (Option.value quotas ~default:[])
          |> with_deadline_policy deadline_policy
          |> with_pipelines (Option.value pipelines ~default:[])
          |> with_jobs jobs)
      in
      let config =
        match mode with
        | None -> config
        | Some m -> Config.with_tune_mode m config
      in
      let config =
        if specialize then Config.with_specialize true config else config
      in
      let chrome = Option.map (fun _ -> Asap_obs.Chrome.create ()) trace in
      let rp = Scheduler.run ?trace:chrome ~updates config reqs in
      (match out with
       | None -> ()
       | Some path ->
         let oc = open_out path in
         Array.iter
           (fun r -> output_string oc (Scheduler.record_to_line r ^ "\n"))
           rp.Scheduler.rp_records;
         close_out oc;
         Printf.printf "records: wrote %d to %s\n"
           (Array.length rp.Scheduler.rp_records) path);
      (match (trace, chrome) with
       | Some path, Some c ->
         Asap_obs.Chrome.write c path;
         Printf.printf "trace: wrote %d events to %s\n"
           (Asap_obs.Chrome.n_events c) path
       | _ -> ());
      if summary then
        Format.printf "%a@." Asap_serve.Slo.pp rp.Scheduler.rp_summary;
      if counters then
        Format.printf "%a@?" Asap_obs.Registry.pp rp.Scheduler.rp_registry;
      if not (summary || counters) then
        let s = rp.Scheduler.rp_summary in
        Printf.printf
          "served %d (%d degraded, %d shed); hit rate %.2f; p95 %.3f ms\n"
          (s.Asap_serve.Slo.s_ok + s.Asap_serve.Slo.s_degraded)
          s.Asap_serve.Slo.s_degraded s.Asap_serve.Slo.s_shed
          (Asap_serve.Slo.hit_rate s) s.Asap_serve.Slo.s_p95_ms
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Replay a JSONL request file through the serving fleet")
    Term.(const run $ requests_arg $ out_arg $ jobs_arg $ shards_arg
          $ servers_arg $ queue_arg $ cache_arg $ no_cache_arg $ no_batch_arg
          $ no_steal_arg $ quota_arg $ quotas_arg $ deadline_policy_arg
          $ summary_arg $ trace_arg $ counters_arg $ mode_arg
          $ pipelines_arg $ serve_specialize_arg)

(* --- genreqs --------------------------------------------------------- *)

let genreqs_cmd =
  let module Mix = Asap_serve.Mix in
  let module Request = Asap_serve.Request in
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output JSONL path.")
  in
  let n_arg =
    Arg.(value & opt int 200
         & info [ "n" ] ~docv:"N" ~doc:"Number of requests.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed.")
  in
  let alpha_arg =
    Arg.(value & opt float 1.2
         & info [ "alpha" ] ~docv:"A" ~doc:"Zipf exponent (hot/cold skew).")
  in
  let gap_arg =
    Arg.(value & opt float 0.05
         & info [ "gap" ] ~docv:"MS"
             ~doc:"Mean exponential inter-arrival gap, virtual ms.")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"MS"
             ~doc:"Attach this relative latency budget to every request.")
  in
  let mode_arg =
    Arg.(value & opt tune_mode_conv Asap_core.Tuning.default_mode
         & info [ "tune-mode" ] ~docv:"MODE"
             ~doc:"Tuning mode stamped on every generated request \
                   (sweep|model|hybrid).")
  in
  let tenants_arg =
    Arg.(value
         & opt (some (assoc_conv ~name:"--tenants" float_of_string_opt)) None
         & info [ "tenants" ] ~docv:"T=W,..."
             ~doc:"Weighted tenant mix each request is drawn from, e.g. \
                   alpha=3,beta=1. Without it every request belongs to the \
                   default tenant (and the RNG stream is unchanged, so old \
                   seeds reproduce old traces byte-for-byte).")
  in
  let updates_arg =
    Arg.(value & opt int 0
         & info [ "updates" ] ~docv:"N"
             ~doc:"Also draw $(docv) streaming matrix updates (batched \
                   deltas, mean gap --update-gap) and interleave them \
                   with the requests by virtual time.")
  in
  let update_gap_arg =
    Arg.(value & opt float 1.0
         & info [ "update-gap" ] ~docv:"MS"
             ~doc:"Mean exponential gap between streaming updates, \
                   virtual ms.")
  in
  let gen_specialize_arg =
    Arg.(value & flag
         & info [ "specialize" ]
             ~doc:"Stamp specialize=true on every generated request \
                   (serve ahead-of-time specialized artefacts).")
  in
  let run out n seed alpha gap deadline engine mode tenants updates
      update_gap specialize =
    let profiles =
      List.map
        (fun p ->
          { p with Mix.p_engine = engine; p_tune_mode = mode;
            p_specialize = specialize })
        (Mix.default_profiles ())
    in
    let reqs =
      Mix.hot_cold ~alpha ~mean_gap_ms:gap ?deadline_ms:deadline
        ?tenants ~seed ~n profiles
    in
    let ups =
      if updates = 0 then []
      else Mix.update_stream ~mean_gap_ms:update_gap ~seed ~n:updates profiles
    in
    (* Interleave by virtual time so the file reads as the stream the
       replay sees; the scheduler orders each class itself either way. *)
    let lines =
      List.merge
        (fun (ta, _) (tb, _) -> compare ta tb)
        (List.map (fun r -> (r.Request.arrival_ms, Request.to_line r)) reqs)
        (List.map
           (fun u ->
             (u.Request.Update.u_at_ms, Request.Update.to_line u))
           ups)
    in
    let oc = open_out out in
    List.iter (fun (_, l) -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    if updates = 0 then Printf.printf "wrote %d requests to %s\n" n out
    else
      Printf.printf "wrote %d requests and %d updates to %s\n" n updates out
  in
  Cmd.v
    (Cmd.info "genreqs"
       ~doc:"Write a synthetic hot/cold request mix as JSONL")
    Term.(const run $ out_arg $ n_arg $ seed_arg $ alpha_arg $ gap_arg
          $ deadline_arg $ engine_arg $ mode_arg $ tenants_arg $ updates_arg
          $ update_gap_arg $ gen_specialize_arg)

let () =
  let info =
    Cmd.info "asapc" ~version:"1.0.0"
      ~doc:"ASaP: automatic software prefetching for sparse tensor kernels"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ compile_cmd; run_cmd; inspect_cmd; gen_cmd; tune_cmd; serve_cmd;
            genreqs_cmd; passes_cmd ]))
